#ifndef PMG_MEMSIM_CPU_CACHE_H_
#define PMG_MEMSIM_CPU_CACHE_H_

#include <cstdint>
#include <vector>

#include "pmg/common/types.h"

/// \file cpu_cache.h
/// A per-thread direct-mapped cache of 64-byte lines modelling the private
/// L1/L2 of one core. It decides whether an access reaches the memory
/// system at all, which is what gives sequential scans their bandwidth
/// character and pointer chasing its latency character.

namespace pmg::memsim {

inline constexpr uint64_t kCacheLineBytes = 64;

/// Direct-mapped line cache. Not thread-safe (one instance per virtual
/// thread).
class CpuCache {
 public:
  /// `lines` must be a power of two (default 16384 lines = 1MB, the L2 of
  /// the paper's Cascade Lake cores).
  explicit CpuCache(uint32_t lines);

  /// Returns true if `line` (vaddr >> 6) is resident; installs it if not.
  bool AccessLine(uint64_t line) {
    const uint32_t idx = static_cast<uint32_t>(line) & mask_;
    if (tags_[idx] == line) return true;
    tags_[idx] = line;
    return false;
  }

  /// Drops `count` consecutive lines starting at `first_line` if resident
  /// (e.g. a quarantined page whose frames were retired: the stale copies
  /// must not serve hits after the remap).
  void InvalidateRange(uint64_t first_line, uint64_t count) {
    for (uint64_t line = first_line; line < first_line + count; ++line) {
      const uint32_t idx = static_cast<uint32_t>(line) & mask_;
      if (tags_[idx] == line) tags_[idx] = ~0ull;
    }
  }

  /// Empties the cache.
  void Clear();

 private:
  uint32_t mask_;
  std::vector<uint64_t> tags_;
};

}  // namespace pmg::memsim

#endif  // PMG_MEMSIM_CPU_CACHE_H_
