#ifndef PMG_MEMSIM_NEAR_MEMORY_H_
#define PMG_MEMSIM_NEAR_MEMORY_H_

#include <cstdint>
#include <vector>

#include "pmg/common/types.h"

/// \file near_memory.h
/// The memory-mode near-memory cache: per socket, DRAM acts as a
/// physically-indexed, physically-tagged cache in front of the socket's
/// Optane PMM, with 4KB caching granularity (Section 2). Each socket's
/// PMM can only use its own socket's DRAM as near-memory, so the cache is
/// partitioned by home node. The real hardware is direct-mapped — conflict
/// misses are the effect behind Figure 4(a)'s super-linear degradation of
/// NUMA-local allocations — but the cache is also configurable as
/// set-associative with LRU, implementing the paper's Section 6.5 future
/// work ("techniques can be developed to improve near-memory hit rate");
/// bench_ablation_nearmem quantifies what associativity would buy.

namespace pmg::memsim {

/// Page cache for all sockets of a memory-mode machine.
class NearMemoryCache {
 public:
  /// Outcome of a near-memory access.
  struct Result {
    bool hit = false;
    /// A dirty victim page must be written back to PMM media.
    bool writeback = false;
  };

  /// `frames_per_socket` = socket DRAM bytes / 4KB. `ways` = 1 models the
  /// hardware's direct-mapped cache; higher values add LRU associativity
  /// at the same total capacity. `frames_per_socket` must be divisible by
  /// `ways`.
  NearMemoryCache(uint32_t sockets, uint64_t frames_per_socket,
                  uint32_t ways = 1);

  /// Accesses physical 4KB frame `frame`, homed on `node`. On a miss the
  /// frame is installed (the caller charges fill/writeback traffic).
  Result Access(NodeId node, PhysPage frame, bool write);

  /// Drops `count` consecutive frames starting at `frame` from `node`'s
  /// cache (page migrated away or freed). Dirty contents are discarded;
  /// the caller accounts for the writeback if it matters.
  void Invalidate(NodeId node, PhysPage frame, uint64_t count);

  /// Fraction of frames currently holding a page (diagnostics).
  double Occupancy(NodeId node) const;

  uint64_t sets_per_socket() const { return sets_; }
  uint32_t ways() const { return ways_; }

 private:
  uint64_t SetIndex(PhysPage frame) const;

  uint64_t sets_;
  uint32_t ways_;
  /// tags_[node][set * ways + way]: resident frame, kNoFrame if empty.
  std::vector<std::vector<PhysPage>> tags_;
  std::vector<std::vector<uint8_t>> dirty_;
  /// LRU ages per way (0 = most recent); unused when ways_ == 1.
  std::vector<std::vector<uint8_t>> age_;
};

}  // namespace pmg::memsim

#endif  // PMG_MEMSIM_NEAR_MEMORY_H_
