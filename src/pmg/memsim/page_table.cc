#include "pmg/memsim/page_table.h"

#include <algorithm>
#include <utility>

#include "pmg/common/check.h"

namespace pmg::memsim {

namespace {

/// Deterministic chunk-promotion hash (splitmix64 step).
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

PageTable::PageTable(uint32_t thp_percent, uint64_t seed)
    : thp_percent_(thp_percent),
      seed_(seed),
      // Start away from zero so a stray null-ish address trips the lookup
      // check instead of silently resolving.
      next_base_(1ull << 30) {}

RegionId PageTable::CreateRegion(uint64_t bytes, const PagePolicy& policy,
                                 std::string name) {
  PMG_CHECK(bytes > 0);
  PMG_CHECK_MSG(policy.page_size != PageSizeClass::k1G,
                "1GB pages are not supported by the page table model");

  Slot slot;
  Region& r = slot.region;
  r.base = next_base_;
  r.bytes = bytes;
  r.policy = policy;
  r.name = std::move(name);

  const uint64_t chunks = (bytes + kHugePageBytes - 1) / kHugePageBytes;
  r.chunk_first_page.reserve(chunks);
  r.chunk_is_huge.reserve(chunks);

  const RegionId id = static_cast<RegionId>(slots_.size());
  r.id = id;
  for (uint64_t c = 0; c < chunks; ++c) {
    const uint64_t chunk_bytes =
        std::min(kHugePageBytes, bytes - c * kHugePageBytes);
    const bool full_chunk = chunk_bytes == kHugePageBytes;
    bool huge = false;
    if (r.policy.page_size == PageSizeClass::k2M) {
      // Explicit huge-page allocation (a Galois-style huge-page arena)
      // rounds a tail of >= 1MB up to a whole 2MB page (the internal
      // fragmentation is modelled by the 512-frame backing allocation);
      // smaller allocations fall back to base pages, as an arena
      // allocator packs small objects rather than dedicating huge pages.
      huge = full_chunk || chunk_bytes >= kHugePageBytes / 2;
    } else if (full_chunk && r.policy.thp) {
      huge = Mix(seed_ ^ (uint64_t{id} << 32) ^ c) % 100 < thp_percent_;
    }
    r.chunk_first_page.push_back(static_cast<uint32_t>(r.pages.size()));
    r.chunk_is_huge.push_back(huge ? 1 : 0);
    if (huge) {
      r.pages.emplace_back();
    } else {
      const uint64_t small_pages =
          (chunk_bytes + kSmallPageBytes - 1) / kSmallPageBytes;
      r.pages.resize(r.pages.size() + small_pages);
    }
  }

  // Keep regions 2MB-aligned and separated so page bases never collide in
  // the TLB across regions.
  next_base_ += (bytes + kHugePageBytes - 1) / kHugePageBytes * kHugePageBytes +
                kHugePageBytes;

  slot.live = true;
  slots_.push_back(std::move(slot));
  RebuildIndex();
  return id;
}

void PageTable::DestroyRegion(RegionId id) {
  PMG_CHECK(id < slots_.size() && slots_[id].live);
  uint64_t mapped = 0;
  for (const PageInfo& p : slots_[id].region.pages) {
    if (p.frame != kInvalidFrame) ++mapped;
  }
  NoteUnmapped(mapped);
  slots_[id].live = false;
  slots_[id].region.pages.clear();
  slots_[id].region.pages.shrink_to_fit();
  // Collapse the dead region's range so no stale one-entry cache —
  // last_slot_ here or a LookupView hint held by a caller — can ever
  // match an address inside it again.
  slots_[id].region.bytes = 0;
  last_slot_ = ~0u;
  RebuildIndex();
}

void PageTable::RebuildIndex() {
  index_.clear();
  for (uint32_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].live) index_.emplace_back(slots_[i].region.base, i);
  }
  std::sort(index_.begin(), index_.end());
}

PageLookup PageTable::Lookup(VirtAddr addr) {
  // Fast path: same region as the previous lookup.
  uint32_t slot_idx = ~0u;
  if (last_slot_ != ~0u) {
    const Region& r = slots_[last_slot_].region;
    if (addr >= r.base && addr < r.end()) slot_idx = last_slot_;
  }
  if (slot_idx == ~0u) {
    auto it = std::upper_bound(index_.begin(), index_.end(),
                               std::make_pair(addr, ~0u));
    PMG_CHECK_MSG(it != index_.begin(), "address below all regions");
    --it;
    slot_idx = it->second;
    const Region& r = slots_[slot_idx].region;
    PMG_CHECK_MSG(addr >= r.base && addr < r.end(),
                  "address 0x%llx outside any region",
                  static_cast<unsigned long long>(addr));
    last_slot_ = slot_idx;
  }

  Region& r = slots_[slot_idx].region;
  const uint64_t off = addr - r.base;
  const uint64_t chunk = off >> 21;
  PageLookup out;
  out.region = &r;
  if (r.chunk_is_huge[chunk]) {
    out.page_index = r.chunk_first_page[chunk];
    out.page_base = r.base + chunk * kHugePageBytes;
    out.cls = PageSizeClass::k2M;
  } else {
    const uint64_t in_chunk = off & (kHugePageBytes - 1);
    out.page_index = r.chunk_first_page[chunk] +
                     static_cast<uint32_t>(in_chunk >> 12);
    out.page_base = addr & ~(kSmallPageBytes - 1);
    out.cls = PageSizeClass::k4K;
  }
  out.page = &r.pages[out.page_index];
  return out;
}

ConstPageLookup PageTable::LookupView(VirtAddr addr,
                                      uint32_t* hint_slot) const {
  // Same resolution as Lookup, but const and with the one-entry cache
  // owned by the caller: safe for concurrent translation streams.
  uint32_t slot_idx = ~0u;
  if (*hint_slot != ~0u && *hint_slot < slots_.size()) {
    const Region& r = slots_[*hint_slot].region;
    if (addr >= r.base && addr < r.end()) slot_idx = *hint_slot;
  }
  if (slot_idx == ~0u) {
    auto it = std::upper_bound(index_.begin(), index_.end(),
                               std::make_pair(addr, ~0u));
    PMG_CHECK_MSG(it != index_.begin(), "address below all regions");
    --it;
    slot_idx = it->second;
    const Region& r = slots_[slot_idx].region;
    PMG_CHECK_MSG(addr >= r.base && addr < r.end(),
                  "address 0x%llx outside any region",
                  static_cast<unsigned long long>(addr));
    *hint_slot = slot_idx;
  }

  const Region& r = slots_[slot_idx].region;
  const uint64_t off = addr - r.base;
  const uint64_t chunk = off >> 21;
  ConstPageLookup out;
  out.region = &r;
  if (r.chunk_is_huge[chunk]) {
    out.page_index = r.chunk_first_page[chunk];
    out.page_base = r.base + chunk * kHugePageBytes;
    out.cls = PageSizeClass::k2M;
  } else {
    const uint64_t in_chunk = off & (kHugePageBytes - 1);
    out.page_index = r.chunk_first_page[chunk] +
                     static_cast<uint32_t>(in_chunk >> 12);
    out.page_base = addr & ~(kSmallPageBytes - 1);
    out.cls = PageSizeClass::k4K;
  }
  out.page = &r.pages[out.page_index];
  return out;
}

Region& PageTable::region(RegionId id) {
  PMG_CHECK(id < slots_.size() && slots_[id].live);
  return slots_[id].region;
}

const Region& PageTable::region(RegionId id) const {
  PMG_CHECK(id < slots_.size() && slots_[id].live);
  return slots_[id].region;
}

bool PageTable::IsLive(RegionId id) const {
  return id < slots_.size() && slots_[id].live;
}

void PageTable::ForEachMappedPage(
    const std::function<void(Region&, PageInfo&, VirtAddr, PageSizeClass)>&
        fn) {
  for (Slot& s : slots_) {
    if (!s.live) continue;
    Region& r = s.region;
    for (uint64_t c = 0; c < r.chunk_first_page.size(); ++c) {
      const VirtAddr chunk_base = r.base + c * kHugePageBytes;
      const uint32_t first = r.chunk_first_page[c];
      if (r.chunk_is_huge[c]) {
        PageInfo& p = r.pages[first];
        if (p.frame != kInvalidFrame) {
          fn(r, p, chunk_base, PageSizeClass::k2M);
        }
        continue;
      }
      const uint32_t last = c + 1 < r.chunk_first_page.size()
                                ? r.chunk_first_page[c + 1]
                                : static_cast<uint32_t>(r.pages.size());
      for (uint32_t i = first; i < last; ++i) {
        PageInfo& p = r.pages[i];
        if (p.frame != kInvalidFrame) {
          fn(r, p, chunk_base + uint64_t{i - first} * kSmallPageBytes,
             PageSizeClass::k4K);
        }
      }
    }
  }
}

}  // namespace pmg::memsim
