#include <algorithm>
#include <functional>
#include <vector>

#include "pmg/common/check.h"
#include "pmg/memsim/machine.h"

/// \file machine_phased.cc
/// The host-parallel phased pricing engine (docs/determinism.md).
///
/// Eligible epochs (HostPhasedEligible) do not price accesses inline.
/// Instead the recording thread appends every priced operation to a
/// per-virtual-thread log — preserving the exact serial schedule in a
/// global turn log — and the log settles in three passes:
///
///   pass 1 (parallel, one task per virtual thread): everything whose
///     outcome depends only on that thread's own history — CPU cache,
///     sequentiality, TLB and page walks — plus integer shadow counters.
///     Operations whose price is order-dependent across threads
///     (first-touch faults, the shared near-memory cache) are deferred.
///   pass 2 (serial): replays the deferred residue in recorded global
///     order against the shared structures, reusing the direct-mode
///     fault path verbatim so placement and charges match bit for bit.
///   pass 3 (parallel): accumulates each thread's user clock from the
///     resolved per-operation charges in recorded per-thread order.
///
/// Why the result is byte-identical to direct (serial) pricing:
///  - every latency is computed by the same expressions on the same
///    operands (cost_model.h), so each per-operation double matches;
///  - the user clock sums those doubles in the same per-thread order
///    (pass 3), and the extra `+= 0.0` adds for absent charges are exact
///    identities on a non-negative clock;
///  - all remaining counters are integers, whose sums are order-free;
///  - all cross-thread-order-dependent state advances in recorded global
///    order (pass 2), so faults, frame placement and near-memory hits
///    resolve exactly as they would have inline.
/// Host workers write disjoint state (their own thread's log and
/// ThreadState), so the host schedule — worker count, dispatch order —
/// can never leak into a published number.

namespace pmg::memsim {

namespace {

void AddChannelBytes(ChannelByteCounts& dst, const ChannelByteCounts& src) {
  for (int a = 0; a < 2; ++a) {
    for (int s = 0; s < 2; ++s) {
      for (int w = 0; w < 2; ++w) {
        dst.dram[a][s][w] += src.dram[a][s][w];
        dst.pmm[a][s][w] += src.pmm[a][s][w];
      }
    }
  }
}

}  // namespace

void Machine::HostBeginRecord() {
  if (host_logs_.size() != threads_.size()) host_logs_.resize(threads_.size());
  host_last_vt_ = ~0u;
  host_pending_ = 0;
  host_runs_.clear();
  host_active_.clear();
}

void Machine::HostPass1(ThreadId t) {
  HostLog& log = host_logs_[t];
  ThreadState& ts = Thread(t);
  const MemoryTimings& tm = config_.timings;
  const bool memory_mode = config_.kind == MachineKind::kMemoryMode;
  const NodeId socket = SocketOfThread(t);
  HostShadow& sh = log.shadow;
  if (sh.channels.size() != channels_.size()) {
    sh.channels.resize(channels_.size());
  }
  log.priced.assign(log.rec.size(), HostPriced{});
  for (uint32_t i = 0; i < log.rec.size(); ++i) {
    HostRec& r = log.rec[i];
    HostPriced& p = log.priced[i];
    if (r.kind == kHostCompute) {
      p.main_ns = static_cast<double>(r.a);
      continue;
    }
    if (r.kind == kHostStorage) {
      const bool write = (r.flags & 1) != 0;
      const bool sequential = (r.flags & 2) != 0;
      const bool remote = (r.flags & 4) != 0;
      const NodeId node = r.b % config_.topology.sockets;
      sh.channels[node].pmm[remote ? 1 : 0][sequential ? 0 : 1]
                       [write ? 1 : 0] += r.a;
      if (write) {
        sh.storage_write_bytes += r.a;
      } else {
        sh.storage_read_bytes += r.a;
      }
      const CostClass sc =
          remote ? CostClass::kStorageRemote : CostClass::kStorageLocal;
      p.main_ns = UserEventCostNs(sc, config_.kind, tm, inv_mlp_);
      continue;
    }

    const AccessType type = static_cast<AccessType>(r.flags);
    ++sh.accesses;
    if (IsRead(type)) ++sh.reads;
    if (IsWrite(type)) ++sh.writes;

    const uint64_t line = r.a / kCacheLineBytes;
    const bool sequential = line == ts.last_line + 1;
    const bool was_resident = ts.cache->AccessLine(line);
    ts.last_line = line;
    if (was_resident) {
      ++sh.cpu_cache_hits;
      p.main_ns =
          UserEventCostNs(CostClass::kCacheHit, config_.kind, tm, inv_mlp_);
      continue;
    }
    ++sh.cpu_cache_misses;
    uint16_t tag = kHostTagMiss;
    if (sequential) tag |= kHostTagSeq;
    if (IsWrite(type)) tag |= kHostTagWrite;

    const ConstPageLookup lk = pages_.LookupView(r.a, &log.hint);

    // The TLB depends only on (page base, size class), both fixed at
    // region creation, so it simulates exactly even for pages whose
    // first-touch fault has not replayed yet. Hint faults cannot occur:
    // only the migration daemon arms them, and phased epochs require
    // migration off.
    if (ts.tlb->Lookup(lk.page_base, lk.cls)) {
      ++sh.tlb_hits;
    } else {
      ++sh.tlb_misses;
      const CostClass wc = lk.cls == PageSizeClass::k4K   ? CostClass::kTlbWalk4
                           : lk.cls == PageSizeClass::k2M ? CostClass::kTlbWalk3
                                                          : CostClass::kTlbWalk2;
      const SimNs walk = UserLatencyNs(wc, config_.kind, tm);
      p.walk_ns = static_cast<double>(walk) * inv_mlp_;
      sh.page_walk_ns += walk;
      ts.tlb->Insert(lk.page_base, lk.cls);
    }

    if (lk.page->frame == kInvalidFrame) {
      // First touch: placement, locality and medium all resolve at the
      // serial replay, after earlier-in-global-order faults mapped their
      // pages and claimed their frames.
      tag |= kHostTagFault;
      r.tag = tag;
      log.pass2.push_back(i);
      continue;
    }

    const NodeId home = lk.page->node;
    const bool local = home == socket;
    if (local) {
      ++sh.local_accesses;
    } else {
      ++sh.remote_accesses;
    }
    sh.channels[home].dram[local ? 0 : 1][sequential ? 0 : 1]
                         [IsWrite(type) ? 1 : 0] += kCacheLineBytes;
    sh.dram_bytes += kCacheLineBytes;
    r.tag = tag;
    if (memory_mode) {
      // The near-memory cache is shared across threads: whether this
      // miss hits near memory depends on the global access order, so
      // the medium charge resolves in pass 2.
      log.pass2.push_back(i);
      continue;
    }
    const CostClass lat_class =
        local ? CostClass::kDramLocal : CostClass::kDramRemote;
    const SimNs lat = UserLatencyNs(lat_class, config_.kind, tm);
    p.main_ns = static_cast<double>(lat) * inv_mlp_;
  }
}

void Machine::HostPass2() {
  const MemoryTimings& tm = config_.timings;
  const bool memory_mode = config_.kind == MachineKind::kMemoryMode;
  std::vector<uint32_t> cursor(host_logs_.size(), 0);
  std::vector<uint32_t> next_deferred(host_logs_.size(), 0);
  for (const auto& [t, len] : host_runs_) {
    HostLog& log = host_logs_[t];
    const uint32_t hi = cursor[t] + len;
    cursor[t] = hi;
    uint32_t& d = next_deferred[t];
    while (d < log.pass2.size() && log.pass2[d] < hi) {
      const uint32_t idx = log.pass2[d++];
      HostRec& r = log.rec[idx];
      PageLookup lk = pages_.Lookup(r.a);
      if (lk.page->frame == kInvalidFrame) HandleFault(t, lk);
      const bool write = (r.tag & kHostTagWrite) != 0;
      const bool sequential = (r.tag & kHostTagSeq) != 0;
      const NodeId home = lk.page->node;
      const bool local = home == SocketOfThread(t);
      if ((r.tag & kHostTagFault) != 0) {
        // Pass 1 could not see the page's home node; account the
        // locality split and the DRAM line here instead.
        if (local) {
          ++stats_.local_accesses;
        } else {
          ++stats_.remote_accesses;
        }
        ChargeChannel(home, /*pmm=*/false, !local, sequential, write,
                      kCacheLineBytes);
        stats_.dram_bytes += kCacheLineBytes;
      }
      CostClass lat_class;
      if (memory_mode) {
        const PhysPage frame =
            lk.page->frame + ((r.a - lk.page_base) / kSmallPageBytes);
        const NearMemoryCache::Result nr = near_mem_->Access(home, frame, write);
        if (nr.hit) {
          ++stats_.near_mem_hits;
          lat_class =
              local ? CostClass::kNearHitLocal : CostClass::kNearHitRemote;
        } else {
          ++stats_.near_mem_misses;
          lat_class =
              local ? CostClass::kPmmMissLocal : CostClass::kPmmMissRemote;
          ChargeChannel(home, /*pmm=*/true, /*remote=*/false,
                        /*sequential=*/true, /*write=*/false, kSmallPageBytes);
          stats_.pmm_read_bytes += kSmallPageBytes;
          if (nr.writeback) {
            ++stats_.near_mem_writebacks;
            ChargeChannel(home, true, false, true, true, kSmallPageBytes);
            stats_.pmm_write_bytes += kSmallPageBytes;
          }
        }
      } else {
        lat_class = local ? CostClass::kDramLocal : CostClass::kDramRemote;
      }
      const SimNs lat = UserLatencyNs(lat_class, config_.kind, tm);
      log.priced[idx].main_ns = static_cast<double>(lat) * inv_mlp_;
    }
  }
}

void Machine::HostPass3(ThreadId t) {
  HostLog& log = host_logs_[t];
  ThreadState& ts = threads_[t];
  for (const HostPriced& p : log.priced) {
    // Two adds per operation, in recorded per-thread order: the walk
    // charge (if any) preceded the main charge inline, and a zero add
    // is an exact identity on the non-negative clock.
    ts.user_ns += p.walk_ns;
    ts.user_ns += p.main_ns;
  }
  log.rec.clear();
  log.priced.clear();
  log.pass2.clear();
  HostShadow& sh = log.shadow;
  for (ChannelByteCounts& ch : sh.channels) ch = ChannelByteCounts{};
  std::vector<ChannelByteCounts> channels = std::move(sh.channels);
  sh = HostShadow{};
  sh.channels = std::move(channels);
}

void Machine::HostSettle() {
  if (host_pending_ == 0) {
    host_runs_.clear();
    host_active_.clear();
    host_last_vt_ = ~0u;
    return;
  }
  const uint32_t n = static_cast<uint32_t>(host_active_.size());
  host_pool_->RunTasks(n, [this](uint32_t i) { HostPass1(host_active_[i]); });
  HostPass2();
  // Fold the integer shadows into the published counters. Iteration
  // order is fixed (first-record order) and immaterial: integer sums.
  for (const ThreadId t : host_active_) {
    const HostShadow& sh = host_logs_[t].shadow;
    stats_.accesses += sh.accesses;
    stats_.reads += sh.reads;
    stats_.writes += sh.writes;
    stats_.cpu_cache_hits += sh.cpu_cache_hits;
    stats_.cpu_cache_misses += sh.cpu_cache_misses;
    stats_.tlb_hits += sh.tlb_hits;
    stats_.tlb_misses += sh.tlb_misses;
    stats_.page_walk_ns += sh.page_walk_ns;
    stats_.local_accesses += sh.local_accesses;
    stats_.remote_accesses += sh.remote_accesses;
    stats_.dram_bytes += sh.dram_bytes;
    stats_.storage_read_bytes += sh.storage_read_bytes;
    stats_.storage_write_bytes += sh.storage_write_bytes;
    for (size_t s = 0; s < channels_.size(); ++s) {
      AddChannelBytes(channels_[s], sh.channels[s]);
    }
  }
  host_pool_->RunTasks(n, [this](uint32_t i) { HostPass3(host_active_[i]); });
  host_runs_.clear();
  host_active_.clear();
  host_last_vt_ = ~0u;
  host_pending_ = 0;
}

}  // namespace pmg::memsim
