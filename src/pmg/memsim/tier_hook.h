#ifndef PMG_MEMSIM_TIER_HOOK_H_
#define PMG_MEMSIM_TIER_HOOK_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "pmg/common/types.h"
#include "pmg/memsim/page_table.h"

/// \file tier_hook.h
/// The machine-side seam of the pmg::tierscope placement-observability
/// layer (the sibling of access_observer.h / trace_sink.h / fault_hook.h).
/// While a TierHook is attached the machine reports every page-placement
/// decision it makes — first-touch placement, the migration daemon's
/// candidate/migrate/skip verdicts with the reason a candidate was passed
/// over, quarantine remaps, region teardown — plus one per-epoch tier
/// sample (per-node occupancy, per-socket channel traffic, daemon cost).
/// The contract matches the other seams: with no hook attached the hot
/// path pays one null check and the machine prices bit-identically to a
/// hook-free build; attaching one never changes a simulated number (it
/// only forces inline pricing — see docs/determinism.md); attach/detach
/// only outside an epoch.
///
/// The conservation law (enforced by pmg::tierscope at emit and re-derived
/// in tests/tierscope): per scan, every hot page is exactly one of
/// migrated or skipped-for-one-reason, so
///   candidates == migrated_pages + sum(skipped by reason),
/// and the audit totals reconcile bit-exactly with MachineStats
/// (migrations, migration_scans, tlb_shootdowns, minor_faults) and the
/// DaemonCost breakdown the trace layer buckets.

namespace pmg::memsim {

/// Why the migration daemon passed over a hot page. A page is *hot* when
/// its sampled remote accesses reach the (page-size-scaled) threshold and
/// exceed its local accesses; a hot page migrates unless exactly one of
/// these stops it. Reasons are canonical: the daemon tests them in this
/// order, so each skip carries the first reason that applied.
enum class TierSkipReason : uint8_t {
  /// max_migrations_per_scan already reached this scan.
  kRateLimit = 0,
  /// The page is larger than the remaining migration byte budget.
  kByteBudget,
  /// No node had frames for the page (simulated memory full).
  kNoFrames,
  /// Frames spilled to a node other than the target; given back.
  kWrongNode,
  kCount,
};

inline constexpr size_t kTierSkipReasonCount =
    static_cast<size_t>(TierSkipReason::kCount);

constexpr const char* TierSkipReasonName(TierSkipReason r) {
  switch (r) {
    case TierSkipReason::kRateLimit:
      return "rate-limit";
    case TierSkipReason::kByteBudget:
      return "byte-budget";
    case TierSkipReason::kNoFrames:
      return "no-frames";
    case TierSkipReason::kWrongNode:
      return "wrong-node";
    case TierSkipReason::kCount:
      break;
  }
  return "?";
}

/// The finished audit of one migration-daemon scan, delivered after the
/// per-page candidate/migrate/skip events of the same scan. The cost
/// split mirrors Machine::DaemonCost: the four priced components sum to
/// exactly the daemon time the scan added to the epoch, and the _raw
/// fields are the pre-pmm_kernel_factor integral inputs.
struct TierScanRecord {
  /// 1-based ordinal (equals MachineStats::migration_scans after the
  /// scan).
  uint64_t scan_index = 0;
  /// Simulated clock the scan ran at (end of the triggering epoch,
  /// before daemon time is added).
  SimNs at_ns = 0;
  /// Pages mapped when the scan started (what the scan walk priced).
  uint64_t mapped_pages = 0;
  SimNs scan_ns = 0;
  SimNs move_ns = 0;
  SimNs remap_ns = 0;
  SimNs shootdown_ns = 0;
  SimNs scan_raw_ns = 0;
  SimNs shootdown_raw_ns = 0;
  uint64_t migrated_pages = 0;
  uint64_t migrated_bytes = 0;
  /// Hot pages examined this scan == migrated_pages + sum(skipped).
  uint64_t candidates = 0;
  uint64_t skipped[kTierSkipReasonCount] = {};
};

/// One per-epoch sample of where memory lives and what moved, taken at
/// epoch end after the machine's stats are final for the epoch.
struct TierEpochSample {
  uint64_t epoch_index = 0;
  /// Machine clock when the epoch began / its duration (incl. daemon).
  SimNs start_ns = 0;
  SimNs total_ns = 0;
  SimNs daemon_ns = 0;
  /// Pages migrated by the scan that ran at this epoch's end (0 when no
  /// scan ran).
  uint64_t migrations = 0;
  struct NodeSample {
    /// Bytes backed by frames on the node at epoch end.
    uint64_t bytes_used = 0;
    /// Bytes the node's channels moved this epoch, by medium.
    uint64_t dram_bytes = 0;
    uint64_t pmm_bytes = 0;
  };
  /// Indexed by node (== socket).
  std::vector<NodeSample> nodes;
};

/// Receiver of the placement-decision stream. Not owned by the machine;
/// must outlive its attachment. Implemented by tierscope::TierScope.
class TierHook {
 public:
  virtual ~TierHook() = default;

  /// A region was mapped (frames still unassigned — placement happens at
  /// first touch).
  virtual void OnTierAlloc(RegionId id, VirtAddr base, uint64_t bytes,
                           std::string_view name) = 0;
  /// A region is being unmapped; its pages leave their nodes.
  virtual void OnTierFree(RegionId id) = 0;

  /// First-touch placement: a minor fault mapped `page_base` onto `node`.
  /// `at_ns` is the clock of the surrounding epoch's start (simulated
  /// time only advances at epoch end).
  virtual void OnTierPagePlaced(RegionId region, VirtAddr page_base,
                                PageSizeClass cls, NodeId node,
                                ThreadId toucher, SimNs at_ns) = 0;

  /// The daemon found a hot page on `node` whose sampled accesses want it
  /// on `wanted`. Followed, for the same page in the same scan, by either
  /// OnTierMigrated or OnTierSkipped.
  virtual void OnTierCandidate(VirtAddr page_base, PageSizeClass cls,
                               NodeId node, NodeId wanted,
                               uint32_t remote_accesses,
                               uint32_t local_accesses) = 0;
  /// The daemon moved a page (`bytes` == PageBytes(cls)).
  virtual void OnTierMigrated(VirtAddr page_base, PageSizeClass cls,
                              NodeId from, NodeId to, uint64_t bytes) = 0;
  /// The daemon passed over a hot page for the canonical `reason`.
  virtual void OnTierSkipped(VirtAddr page_base, PageSizeClass cls,
                             NodeId node, TierSkipReason reason) = 0;
  /// One finished scan (after its candidate/migrate/skip events).
  virtual void OnTierScan(const TierScanRecord& scan) = 0;

  /// An uncorrectable media error retired the page's frames; it was
  /// remapped from `from` to `to` (usually the same node; differs when
  /// the node was full and the remap spilled).
  virtual void OnTierQuarantine(VirtAddr page_base, PageSizeClass cls,
                                NodeId from, NodeId to, SimNs at_ns) = 0;

  /// One finished epoch's tier sample (after stats are updated, before
  /// observers and the fault hook see the epoch end).
  virtual void OnTierEpoch(const TierEpochSample& sample) = 0;
};

}  // namespace pmg::memsim

#endif  // PMG_MEMSIM_TIER_HOOK_H_
