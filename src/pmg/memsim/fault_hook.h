#ifndef PMG_MEMSIM_FAULT_HOOK_H_
#define PMG_MEMSIM_FAULT_HOOK_H_

#include <cstdint>
#include <string_view>

#include "pmg/common/types.h"

/// \file fault_hook.h
/// The fault-injection seam of the machine model, the sibling of the
/// AccessObserver dynamic-analysis seam. A FaultHook attached via
/// Machine::SetFaultHook() is consulted on every *media-visible* event —
/// a costed access that missed the CPU cache, a storage I/O, an epoch end —
/// and can direct the machine to degrade: stall the issuing thread
/// (transient media fault with retries), deliver an uncorrectable media
/// error (machine-check + page quarantine + remap), scale down remote-link
/// bandwidth, or crash the simulated process.
///
/// The machine knows nothing about fault *scheduling*; `pmg::faultsim`
/// implements the deterministic schedule on top of this interface. A
/// machine with no hook attached pays one predictable null-pointer branch
/// per media event and prices bit-identically to a hook-free build.

namespace pmg::memsim {

/// What the hook asks the machine to do with one media access.
struct FaultAction {
  /// Extra time the issuing thread stalls (retry/backoff of a transient
  /// media fault). Charged as non-overlappable user time: a retried issue
  /// is a dependent replay, so MLP does not hide it.
  SimNs stall_ns = 0;
  /// Number of retried issues folded into `stall_ns` (counted in stats).
  uint32_t retries = 0;
  /// Deliver an uncorrectable media error: the machine charges a
  /// machine-check kernel cost, quarantines the backing frames (capacity
  /// is lost), remaps the page to fresh frames and reports the data loss
  /// back through FaultHook::OnQuarantine.
  bool uncorrectable = false;
};

/// Thrown by a FaultHook to model a process crash (power loss, SIGKILL,
/// fatal machine check). This is the one place the library uses a C++
/// exception deliberately: a simulated crash is not a programming error —
/// it must unwind out of arbitrary application code so a recovery driver
/// can discard the dead machine and restart from a checkpoint, exactly as
/// a real process restart discards DRAM while app-direct PM survives.
struct SimulatedCrash {
  /// Media-event ordinal at which the crash fired (0 when epoch-triggered).
  uint64_t media_ops = 0;
  /// Epoch index for epoch-boundary crashes.
  uint64_t epoch = 0;
};

class FaultHook {
 public:
  virtual ~FaultHook() = default;

  /// One costed access that reached the memory system (CPU-cache miss).
  /// Cache hits are not reported: poison lives on media, and a line that
  /// hits in the CPU cache was filled before the error was armed. May
  /// throw SimulatedCrash. `pmm_media` is true when main memory is PMM.
  virtual FaultAction OnMediaAccess(ThreadId t, VirtAddr addr,
                                    bool pmm_media) = 0;

  /// One app-direct storage operation (StorageRead/StorageWrite). Returns
  /// extra stall time for the issuing thread; may throw SimulatedCrash —
  /// a crash here is what tears a checkpoint mid-write.
  virtual SimNs OnStorageOp(ThreadId t, uint64_t bytes, bool write) = 0;

  /// The machine quarantined a poisoned page: data in
  /// [page_base, page_base + page_bytes) of `region` is lost (the remapped
  /// frames read back zero-filled on real hardware).
  virtual void OnQuarantined(VirtAddr page_base, uint64_t page_bytes,
                             std::string_view region) = 0;

  /// Bandwidth multiplier applied to the remote (interconnect) rows when
  /// pricing the epoch with index `epoch`. 1.0 = healthy link; 0.5 =
  /// half bandwidth. Must be in (0, 1].
  virtual double RemoteBandwidthFactor(uint64_t epoch) = 0;

  /// The epoch with index `epoch` ended and its time was accounted. May
  /// throw SimulatedCrash (crash at an epoch boundary).
  virtual void OnEpochEnd(uint64_t epoch) = 0;
};

}  // namespace pmg::memsim

#endif  // PMG_MEMSIM_FAULT_HOOK_H_
