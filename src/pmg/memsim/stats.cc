#include "pmg/memsim/stats.h"

#include <cstdio>

namespace pmg::memsim {

MachineStats MachineStats::operator-(const MachineStats& o) const {
  MachineStats d;
  d.accesses = accesses - o.accesses;
  d.reads = reads - o.reads;
  d.writes = writes - o.writes;
  d.cpu_cache_hits = cpu_cache_hits - o.cpu_cache_hits;
  d.cpu_cache_misses = cpu_cache_misses - o.cpu_cache_misses;
  d.tlb_hits = tlb_hits - o.tlb_hits;
  d.tlb_misses = tlb_misses - o.tlb_misses;
  d.page_walk_ns = page_walk_ns - o.page_walk_ns;
  d.minor_faults = minor_faults - o.minor_faults;
  d.hint_faults = hint_faults - o.hint_faults;
  d.migrations = migrations - o.migrations;
  d.migration_scans = migration_scans - o.migration_scans;
  d.tlb_shootdowns = tlb_shootdowns - o.tlb_shootdowns;
  d.local_accesses = local_accesses - o.local_accesses;
  d.remote_accesses = remote_accesses - o.remote_accesses;
  d.pages_mapped_small = pages_mapped_small - o.pages_mapped_small;
  d.pages_mapped_huge = pages_mapped_huge - o.pages_mapped_huge;
  d.near_mem_hits = near_mem_hits - o.near_mem_hits;
  d.near_mem_misses = near_mem_misses - o.near_mem_misses;
  d.near_mem_writebacks = near_mem_writebacks - o.near_mem_writebacks;
  d.dram_bytes = dram_bytes - o.dram_bytes;
  d.pmm_read_bytes = pmm_read_bytes - o.pmm_read_bytes;
  d.pmm_write_bytes = pmm_write_bytes - o.pmm_write_bytes;
  d.storage_read_bytes = storage_read_bytes - o.storage_read_bytes;
  d.storage_write_bytes = storage_write_bytes - o.storage_write_bytes;
  d.total_ns = total_ns - o.total_ns;
  d.user_ns = user_ns - o.user_ns;
  d.kernel_ns = kernel_ns - o.kernel_ns;
  d.epochs = epochs - o.epochs;
  d.bandwidth_bound_epochs = bandwidth_bound_epochs - o.bandwidth_bound_epochs;
  d.sancheck_races = sancheck_races - o.sancheck_races;
  d.sancheck_race_epochs = sancheck_race_epochs - o.sancheck_race_epochs;
  d.media_ue_events = media_ue_events - o.media_ue_events;
  d.pages_quarantined = pages_quarantined - o.pages_quarantined;
  d.fault_retries = fault_retries - o.fault_retries;
  d.fault_stall_ns = fault_stall_ns - o.fault_stall_ns;
  d.machine_check_ns = machine_check_ns - o.machine_check_ns;
  d.link_degraded_epochs = link_degraded_epochs - o.link_degraded_epochs;
  d.trace_attributed_ns = trace_attributed_ns - o.trace_attributed_ns;
  d.traced_epochs = traced_epochs - o.traced_epochs;
  return d;
}

std::string MachineStats::ToString() const {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "time %.3fs (user %.3fs, kernel %.3fs), epochs %llu (%llu bw-bound)\n"
      "accesses %llu (cpu-cache hit %.1f%%), tlb miss %.3f%%, faults %llu, "
      "hint-faults %llu\n"
      "local %.1f%%, near-mem hit %.2f%%, migrations %llu, shootdowns %llu\n"
      "dram %.1fMB, pmm read %.1fMB, pmm write %.1fMB",
      TotalSeconds(), static_cast<double>(user_ns) / 1e9,
      static_cast<double>(kernel_ns) / 1e9,
      static_cast<unsigned long long>(epochs),
      static_cast<unsigned long long>(bandwidth_bound_epochs),
      static_cast<unsigned long long>(accesses),
      accesses == 0 ? 0.0 : 100.0 * cpu_cache_hits / accesses,
      100.0 * TlbMissRate(), static_cast<unsigned long long>(minor_faults),
      static_cast<unsigned long long>(hint_faults),
      100.0 * LocalAccessFraction(), 100.0 * NearMemHitRate(),
      static_cast<unsigned long long>(migrations),
      static_cast<unsigned long long>(tlb_shootdowns),
      dram_bytes / 1e6, pmm_read_bytes / 1e6, pmm_write_bytes / 1e6);
  std::string out = buf;
  if (media_ue_events > 0 || fault_retries > 0 || link_degraded_epochs > 0) {
    std::snprintf(
        buf, sizeof(buf),
        "\nfaults: %llu UE(s) (%llu frame(s) quarantined, mce %.3fms), "
        "%llu retry(ies) (stall %.3fms), %llu degraded-link epoch(s)",
        static_cast<unsigned long long>(media_ue_events),
        static_cast<unsigned long long>(pages_quarantined),
        static_cast<double>(machine_check_ns) / 1e6,
        static_cast<unsigned long long>(fault_retries),
        static_cast<double>(fault_stall_ns) / 1e6,
        static_cast<unsigned long long>(link_degraded_epochs));
    out += buf;
  }
  if (sancheck_races > 0) {
    std::snprintf(buf, sizeof(buf),
                  "\nSANCHECK: %llu data race(s) in %llu epoch(s)",
                  static_cast<unsigned long long>(sancheck_races),
                  static_cast<unsigned long long>(sancheck_race_epochs));
    out += buf;
  }
  return out;
}

}  // namespace pmg::memsim
