#ifndef PMG_MEMSIM_TRACE_SINK_H_
#define PMG_MEMSIM_TRACE_SINK_H_

#include <cstdint>
#include <vector>

#include "pmg/common/types.h"
#include "pmg/memsim/cost_model.h"
#include "pmg/memsim/page_table.h"

/// \file trace_sink.h
/// The machine-side seam of the pmg::trace attribution layer (the sibling
/// of access_observer.h / fault_hook.h). While a TraceSink is attached the
/// machine attributes every simulated nanosecond it adds to
/// MachineStats::user_ns / kernel_ns to one bucket of TraceBucket, and
/// hands the finished breakdown to the sink once per epoch. The contract
/// matches the other seams: with no sink attached the hot path pays one
/// null check and the machine prices bit-identically to a sink-free
/// build; attach/detach only outside an epoch.
///
/// The conservation law (enforced by tests/trace): per epoch, the bucket
/// values summed over EpochTrace::buckets equal exactly the user+kernel
/// time the epoch added to MachineStats. User-side costs accumulate in
/// doubles (per-miss cost is latency / MLP); the machine converts them to
/// integer nanoseconds by cumulative rounding and folds the cast residual
/// into the largest bucket, so the integer buckets always sum to the
/// reported integer time. A cost site added to the simulator without a
/// bucket attribution trips the machine's unattributed-time check long
/// before it could hide in that residual.

namespace pmg::memsim {

/// Where one simulated nanosecond went. User-side buckets price the
/// latency critical path of the epoch's critical thread; kernel-side
/// buckets price traps on the critical thread plus the migration daemon.
enum class TraceBucket : uint8_t {
  // --- User side ---
  kCpuCacheHit = 0,     ///< Line resident in the private CPU cache.
  kTlbWalk,             ///< Page-table walk on a TLB miss (TLB hits are free).
  kDramLocal,           ///< DRAM-main-memory access, same socket.
  kDramRemote,          ///< DRAM-main-memory access across the interconnect.
  kNearMemHitLocal,     ///< Memory mode: near-memory (DRAM cache) hit, local.
  kNearMemHitRemote,    ///< Memory mode: near-memory hit, remote socket.
  kPmmMediaMiss,        ///< Memory mode: near-memory miss; the media-side
                        ///< 4KB fill (and any dirty-victim writeback) is on
                        ///< the latency path.
  kStorageIo,           ///< App-direct storage reads/writes (checkpoints).
  kCompute,             ///< Pure compute time reported via AddCompute.
  kRetryBackoff,        ///< Fault-injection stalls: transient-media retries
                        ///< and storage-op delays (MLP cannot hide replays).
  kRooflineStall,       ///< Bandwidth-bound epochs: the excess of the
                        ///< channel roofline over the latency path.
  // --- Kernel side ---
  kMinorFault,          ///< First-touch page mapping (placement runs here).
  kHintFault,           ///< AutoNUMA hint fault sampling access locality.
  kMachineCheck,        ///< Machine-check handler for uncorrectable errors.
  kMigrationScan,       ///< Daemon bookkeeping: per-mapped-page scan cost.
  kMigrationMove,       ///< Page copy at the configured migration bandwidth.
  kMigrationRemap,      ///< PTE remap of each migrated page.
  kTlbShootdown,        ///< Batched TLB-shootdown IPI after migrations.
  kCount,
};

inline constexpr size_t kTraceBucketCount =
    static_cast<size_t>(TraceBucket::kCount);
/// Buckets below this index accumulate user time, at or above kernel time.
inline constexpr size_t kFirstKernelBucket =
    static_cast<size_t>(TraceBucket::kMinorFault);

constexpr const char* TraceBucketName(TraceBucket b) {
  switch (b) {
    case TraceBucket::kCpuCacheHit:
      return "cpu-cache-hit";
    case TraceBucket::kTlbWalk:
      return "tlb-walk";
    case TraceBucket::kDramLocal:
      return "dram-local";
    case TraceBucket::kDramRemote:
      return "dram-remote";
    case TraceBucket::kNearMemHitLocal:
      return "near-mem-hit-local";
    case TraceBucket::kNearMemHitRemote:
      return "near-mem-hit-remote";
    case TraceBucket::kPmmMediaMiss:
      return "pmm-media-miss";
    case TraceBucket::kStorageIo:
      return "storage-io";
    case TraceBucket::kCompute:
      return "compute";
    case TraceBucket::kRetryBackoff:
      return "retry-backoff";
    case TraceBucket::kRooflineStall:
      return "roofline-stall";
    case TraceBucket::kMinorFault:
      return "minor-fault";
    case TraceBucket::kHintFault:
      return "hint-fault";
    case TraceBucket::kMachineCheck:
      return "machine-check";
    case TraceBucket::kMigrationScan:
      return "migration-scan";
    case TraceBucket::kMigrationMove:
      return "migration-move";
    case TraceBucket::kMigrationRemap:
      return "migration-remap";
    case TraceBucket::kTlbShootdown:
      return "tlb-shootdown";
    case TraceBucket::kCount:
      break;
  }
  return "?";
}

constexpr bool IsKernelBucket(TraceBucket b) {
  return static_cast<size_t>(b) >= kFirstKernelBucket;
}

/// The finished accounting of one epoch, delivered to the sink by
/// EndEpoch after the machine's own stats are updated.
struct EpochTrace {
  uint64_t epoch_index = 0;
  uint32_t active_threads = 0;
  /// Machine clock when the epoch began / its duration (incl. daemon).
  SimNs start_ns = 0;
  SimNs total_ns = 0;
  SimNs latency_path_ns = 0;
  SimNs bandwidth_path_ns = 0;
  SimNs daemon_ns = 0;
  bool bandwidth_bound = false;
  ThreadId critical_thread = 0;
  /// Sums exactly to the user+kernel time this epoch added to the stats.
  SimNs buckets[kTraceBucketCount] = {};

  /// Integer clocks of every thread that ran this epoch (zero-time
  /// threads are omitted).
  struct ThreadSlice {
    ThreadId thread = 0;
    SimNs user_ns = 0;
    SimNs kernel_ns = 0;
  };
  std::vector<ThreadSlice> threads;

  /// Access-path user time charged against each region touched this
  /// epoch (compute and storage I/O have no region and are not listed).
  struct RegionCharge {
    RegionId region = 0;
    uint64_t accesses = 0;
    SimNs user_ns = 0;
  };
  std::vector<RegionCharge> regions;

  /// Bytes moved on each socket's channels this epoch.
  struct SocketTraffic {
    uint64_t dram_bytes = 0;
    uint64_t pmm_bytes = 0;
  };
  std::vector<SocketTraffic> sockets;

  /// Pages migrated by the daemon scan that ran at this epoch's end.
  uint64_t migrations = 0;

  /// Raw (pre-pmm_kernel_factor) daemon inputs of that scan. Unlike the
  /// CostRecord copies below these are carried on every traced epoch, so
  /// the run report never silently drops the DaemonCost breakdown.
  SimNs daemon_scan_raw_ns = 0;
  SimNs daemon_shootdown_raw_ns = 0;

  /// The priced inputs of the epoch, sufficient to re-derive its cost
  /// from a MemoryTimings (pmg::whatif). Populated only for sinks whose
  /// WantsCostModel() returns true; `valid` is false otherwise.
  struct CostRecord {
    bool valid = false;
    /// Degraded-link factor the roofline was priced with this epoch.
    double remote_factor = 1.0;
    /// Migration-daemon components. Scan and shootdown are the raw
    /// (pre-pmm_kernel_factor) integral costs; remap re-derives from
    /// `migrations` (a constant per page); move does not depend on
    /// MemoryTimings and is carried as the final priced value.
    SimNs daemon_scan_raw = 0;
    SimNs daemon_shootdown_raw = 0;
    SimNs daemon_move_ns = 0;

    /// Per-thread event counts and recorded clocks, parallel to
    /// EpochTrace::threads (same order, same omit-zero rule).
    struct ThreadCost {
      ThreadId thread = 0;
      uint64_t counts[kCostClassCount] = {};
      /// Recorded sums of the two user-side charges that have no
      /// per-event class (arbitrary per-call amounts).
      double compute_ns = 0;
      double retry_ns = 0;
      /// The thread's exact fractional user clock at epoch end (the
      /// integer EpochTrace::ThreadSlice::user_ns is its truncation).
      double user_exact_ns = 0;
    };
    std::vector<ThreadCost> threads;

    /// Per-socket channel byte counters, full split (indexed by socket).
    std::vector<ChannelByteCounts> channels;

    /// Memory-mode near-memory miss traffic per socket, so a
    /// perfect-near-memory counterfactual can subtract exactly the
    /// miss-induced media bytes from the roofline.
    struct SocketFill {
      uint64_t fill_bytes = 0;
      uint64_t writeback_bytes = 0;
    };
    std::vector<SocketFill> fills;
  };
  CostRecord cost;

  SimNs BucketSum() const {
    SimNs sum = 0;
    for (SimNs b : buckets) sum += b;
    return sum;
  }
};

/// Point events the machine (or a driver holding the machine) reports
/// between epoch records.
enum class TraceInstantKind : uint8_t {
  kQuarantine = 0,      ///< value = first retired 4KB frame count.
  kMigration,           ///< value = pages migrated by a daemon scan.
  kCheckpointWrite,     ///< value = payload bytes committed.
  kCheckpointRestore,   ///< value = payload bytes restored.
  kCrash,               ///< value = crash ordinal.
  kServeDispatch,       ///< value = serving-layer request id (pmg::serve).
  kServeComplete,       ///< value = request id of a finished query.
  kServeShed,           ///< value = request id dropped by admission control.
  kServeRecovery,       ///< value = recovery ordinal after a crash rebuild.
};

constexpr const char* TraceInstantName(TraceInstantKind k) {
  switch (k) {
    case TraceInstantKind::kQuarantine:
      return "quarantine";
    case TraceInstantKind::kMigration:
      return "migration";
    case TraceInstantKind::kCheckpointWrite:
      return "checkpoint-write";
    case TraceInstantKind::kCheckpointRestore:
      return "checkpoint-restore";
    case TraceInstantKind::kCrash:
      return "crash";
    case TraceInstantKind::kServeDispatch:
      return "serve-dispatch";
    case TraceInstantKind::kServeComplete:
      return "serve-complete";
    case TraceInstantKind::kServeShed:
      return "serve-shed";
    case TraceInstantKind::kServeRecovery:
      return "serve-recovery";
  }
  return "?";
}

/// Receiver of the attribution stream. Not owned by the machine; must
/// outlive its attachment. Implemented by trace::TraceSession.
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// One finished epoch. Called after MachineStats are updated, before
  /// observers and the fault hook see the epoch end.
  virtual void OnEpochTrace(const EpochTrace& epoch) = 0;

  /// Opt-in to the per-event cost model: when true the machine
  /// additionally maintains per-thread CostClass counters and fills
  /// EpochTrace::cost. Costs never feed pricing, so a sink that declines
  /// (the default) sees the exact pre-whatif EpochTrace and the machine
  /// does no extra bookkeeping.
  virtual bool WantsCostModel() const { return false; }

  /// A point event at simulated time `at_ns` (the clock of the epoch the
  /// event fell in; mid-epoch events carry the epoch's start clock, since
  /// simulated time only advances at epoch end).
  virtual void OnInstant(TraceInstantKind kind, ThreadId thread, SimNs at_ns,
                        uint64_t value) = 0;
};

}  // namespace pmg::memsim

#endif  // PMG_MEMSIM_TRACE_SINK_H_
