#include "pmg/memsim/machine_configs.h"

#include "pmg/common/types.h"

namespace pmg::memsim {

namespace {

/// CPU-cache lines for scaled machines: the paper's 33MB L3 over a
/// hundreds-of-GB working set is a tiny fraction; 32KB over tens of MB
/// keeps the ratio while still amortizing line-granularity streaming.
constexpr uint32_t kScaledCpuCacheLines = 512;

MachineConfig BaseConfig(uint64_t scale) {
  MachineConfig c;
  c.timings = DefaultTimings();
  c.cpu_cache_lines = kScaledCpuCacheLines;
  c.seed = 1;
  (void)scale;
  return c;
}

}  // namespace

MachineConfig OptanePmmConfig(uint64_t scale) {
  MachineConfig c = BaseConfig(scale);
  c.kind = MachineKind::kMemoryMode;
  c.name = "optane-pmm";
  c.topology.sockets = 2;
  c.topology.cores_per_socket = 24;
  c.topology.smt = 2;  // 96 threads
  c.topology.dram_bytes_per_socket = GiB(192) / scale;
  c.topology.pmm_bytes_per_socket = GiB(3072) / scale;
  return c;
}

MachineConfig DramOnlyConfig(uint64_t scale) {
  MachineConfig c = OptanePmmConfig(scale);
  c.kind = MachineKind::kDramMain;
  c.name = "ddr4-dram";
  c.topology.pmm_bytes_per_socket = 0;
  return c;
}

MachineConfig AppDirectConfig(uint64_t scale) {
  MachineConfig c = OptanePmmConfig(scale);
  c.kind = MachineKind::kAppDirect;
  c.name = "optane-appdirect";
  return c;
}

MachineConfig EntropyConfig(uint64_t scale) {
  MachineConfig c = BaseConfig(scale);
  c.kind = MachineKind::kDramMain;
  c.name = "entropy";
  c.topology.sockets = 2;
  c.topology.cores_per_socket = 28;
  c.topology.smt = 1;  // 56 threads
  c.topology.dram_bytes_per_socket = GiB(768) / scale;
  c.topology.pmm_bytes_per_socket = 0;
  return c;
}

MachineConfig StampedeHostConfig(uint64_t scale) {
  MachineConfig c = BaseConfig(scale);
  c.kind = MachineKind::kDramMain;
  c.name = "stampede2-host";
  c.topology.sockets = 2;
  c.topology.cores_per_socket = 24;
  c.topology.smt = 1;  // 48 threads
  c.topology.dram_bytes_per_socket = GiB(96) / scale;
  c.topology.pmm_bytes_per_socket = 0;
  return c;
}

}  // namespace pmg::memsim
