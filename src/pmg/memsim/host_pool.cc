#include "pmg/memsim/host_pool.h"

#include <cerrno>
#include <cstdlib>
#include <map>
#include <memory>

#include "pmg/common/check.h"

namespace pmg::memsim {

namespace {

/// Deterministic mixer (splitmix64 step) for the dispatch shuffle. The
/// shuffle must be seed-driven — never host entropy — so a failing
/// schedule perturbation is replayable from its seed alone.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

HostPool::HostPool(uint32_t workers) : workers_(workers) {
  PMG_CHECK_MSG(workers >= 1 && workers <= kMaxWorkers,
                "a host pool needs 1..%u workers", kMaxWorkers);
  threads_.reserve(workers_ - 1);
  for (uint32_t i = 0; i + 1 < workers_; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

HostPool::~HostPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& th : threads_) th.join();
}

uint32_t HostPool::DrainBatch(uint32_t gen, uint32_t count,
                              const std::function<void(uint32_t)>& fn) {
  uint32_t finished = 0;
  for (;;) {
    uint64_t t = ticket_.load(std::memory_order_acquire);
    if (static_cast<uint32_t>(t >> 32) != gen) break;  // batch retired
    const uint32_t i = static_cast<uint32_t>(t);
    if (i >= count) break;  // batch drained
    if (!ticket_.compare_exchange_weak(t, t + 1, std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
      continue;
    }
    // The CAS succeeded against our generation, so the batch is still in
    // flight: RunTasks cannot return (done_ < count until we credit this
    // task below via our caller), which keeps fn and order_ alive and
    // stable for the read here.
    fn(order_.empty() ? i : order_[i]);
    ++finished;
  }
  return finished;
}

void HostPool::WorkerLoop() {
  uint64_t seen = 0;
  for (;;) {
    const std::function<void(uint32_t)>* fn = nullptr;
    uint32_t count = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock,
                     [&] { return stopping_ || generation_ != seen; });
      if (stopping_) return;
      seen = generation_;
      // A batch that already completed leaves task_fn_ null and
      // task_count_ 0: DrainBatch then claims nothing and we go back to
      // sleep without touching done_.
      fn = task_fn_;
      count = task_count_;
    }
    // Claims are generation-checked: if this thread stalls here until
    // the batch completes and a new one starts, every claim attempt
    // sees a ticket generation != `seen` and DrainBatch returns 0
    // without calling the (by then destroyed) fn or reading the (by
    // then rewritten) order_. The 32-bit generation would have to wrap
    // exactly 2^32 batches during one stall to alias — not a real
    // schedule.
    const uint32_t finished =
        count == 0 ? 0 : DrainBatch(static_cast<uint32_t>(seen), count, *fn);
    if (finished > 0 &&
        done_.fetch_add(finished, std::memory_order_acq_rel) + finished ==
            count) {
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_all();
    }
  }
}

void HostPool::RunTasks(uint32_t count,
                        const std::function<void(uint32_t)>& fn) {
  if (count == 0) return;
  if (workers_ == 1 || count == 1) {
    // Natural order is fine inline: with one lane there is no schedule
    // to perturb, and single-task batches are order-free by definition.
    for (uint32_t i = 0; i < count; ++i) fn(i);
    return;
  }
  // Pools are shared per width across machines, so the single-driver
  // contract (one host thread inside RunTasks, no reentry from tasks)
  // must fail loudly: a plain flag read could miss a concurrent caller.
  PMG_CHECK_MSG(
      !busy_.exchange(true, std::memory_order_acquire),
      "HostPool::RunTasks: second driver on a shared pool (machines "
      "borrowing one pool must settle from one host thread at a time, "
      "and tasks must not call RunTasks)");
  order_.clear();
  const uint64_t seed = shuffle_seed_.load(std::memory_order_relaxed);
  if (seed != 0) {
    // Fisher-Yates driven by the seed and a per-call counter: every
    // batch of the run sees a fresh (but replayable) dispatch order.
    order_.resize(count);
    for (uint32_t i = 0; i < count; ++i) order_[i] = i;
    uint64_t state = Mix(seed ^ ++shuffle_calls_);
    for (uint32_t i = count - 1; i > 0; --i) {
      state = Mix(state);
      const uint32_t j = static_cast<uint32_t>(state % (i + 1));
      std::swap(order_[i], order_[j]);
    }
  }
  uint32_t gen = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    task_fn_ = &fn;
    task_count_ = count;
    done_.store(0, std::memory_order_relaxed);
    ++generation_;
    gen = static_cast<uint32_t>(generation_);
    // Publishing the new generation in ticket_ both opens the new batch
    // (index 0) and retires the old one for any worker still holding
    // stale batch state.
    ticket_.store(static_cast<uint64_t>(gen) << 32,
                  std::memory_order_release);
  }
  start_cv_.notify_all();
  // The caller is a worker too: pull tasks until the batch drains.
  const uint32_t finished = DrainBatch(gen, count, fn);
  std::unique_lock<std::mutex> lock(mu_);
  if (finished > 0 &&
      done_.fetch_add(finished, std::memory_order_acq_rel) + finished ==
          count) {
    done_cv_.notify_all();
  }
  done_cv_.wait(lock, [&] {
    return done_.load(std::memory_order_acquire) == count;
  });
  task_fn_ = nullptr;
  task_count_ = 0;
  lock.unlock();
  busy_.store(false, std::memory_order_release);
}

HostPool* HostPool::ForWorkers(uint32_t workers) {
  if (workers <= 1) return nullptr;
  // Destroyed at static destruction, which joins the pooled threads; no
  // machine outlives main(), so no batch can be in flight by then.
  static std::mutex registry_mu;
  static std::map<uint32_t, std::unique_ptr<HostPool>> registry;
  std::lock_guard<std::mutex> lock(registry_mu);
  std::unique_ptr<HostPool>& slot = registry[workers];
  if (slot == nullptr) slot = std::make_unique<HostPool>(workers);
  return slot.get();
}

HostPool* HostPool::Default() {
  static HostPool* pool = [] {
    uint32_t width = std::thread::hardware_concurrency();
    if (const char* env = std::getenv("PMG_HOST_THREADS")) {
      char* end = nullptr;
      errno = 0;
      const long parsed = std::strtol(env, &end, 10);
      PMG_CHECK_MSG(end != env && *end == '\0' && errno == 0 && parsed >= 1 &&
                        parsed <= static_cast<long>(kMaxWorkers),
                    "PMG_HOST_THREADS must be an integer in [1, %u], got '%s'",
                    kMaxWorkers, env);
      width = static_cast<uint32_t>(parsed);
    }
    if (width == 0) width = 1;  // hardware_concurrency() may report 0
    if (width > kMaxWorkers) width = kMaxWorkers;
    return ForWorkers(width);
  }();
  return pool;
}

}  // namespace pmg::memsim
