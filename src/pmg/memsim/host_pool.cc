#include "pmg/memsim/host_pool.h"

#include <cstdlib>
#include <map>
#include <memory>

#include "pmg/common/check.h"

namespace pmg::memsim {

namespace {

/// Deterministic mixer (splitmix64 step) for the dispatch shuffle. The
/// shuffle must be seed-driven — never host entropy — so a failing
/// schedule perturbation is replayable from its seed alone.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

HostPool::HostPool(uint32_t workers) : workers_(workers) {
  PMG_CHECK_MSG(workers >= 1, "a host pool needs at least one worker");
  threads_.reserve(workers_ - 1);
  for (uint32_t i = 0; i + 1 < workers_; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

HostPool::~HostPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& th : threads_) th.join();
}

void HostPool::WorkerLoop() {
  uint64_t seen = 0;
  for (;;) {
    const std::function<void(uint32_t)>* fn = nullptr;
    uint32_t count = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock,
                     [&] { return stopping_ || generation_ != seen; });
      if (stopping_) return;
      seen = generation_;
      fn = task_fn_;
      count = task_count_;
    }
    uint32_t finished = 0;
    for (;;) {
      const uint32_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) break;
      (*fn)(order_.empty() ? i : order_[i]);
      ++finished;
    }
    if (finished > 0 &&
        done_.fetch_add(finished, std::memory_order_acq_rel) + finished ==
            count) {
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_all();
    }
  }
}

void HostPool::RunTasks(uint32_t count,
                        const std::function<void(uint32_t)>& fn) {
  if (count == 0) return;
  if (workers_ == 1 || count == 1) {
    // Natural order is fine inline: with one lane there is no schedule
    // to perturb, and single-task batches are order-free by definition.
    for (uint32_t i = 0; i < count; ++i) fn(i);
    return;
  }
  PMG_CHECK_MSG(task_fn_ == nullptr, "HostPool::RunTasks is not reentrant");
  order_.clear();
  if (shuffle_seed_ != 0) {
    // Fisher-Yates driven by the seed and a per-call counter: every
    // batch of the run sees a fresh (but replayable) dispatch order.
    order_.resize(count);
    for (uint32_t i = 0; i < count; ++i) order_[i] = i;
    uint64_t state = Mix(shuffle_seed_ ^ ++shuffle_calls_);
    for (uint32_t i = count - 1; i > 0; --i) {
      state = Mix(state);
      const uint32_t j = static_cast<uint32_t>(state % (i + 1));
      std::swap(order_[i], order_[j]);
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    task_fn_ = &fn;
    task_count_ = count;
    next_.store(0, std::memory_order_relaxed);
    done_.store(0, std::memory_order_relaxed);
    ++generation_;
  }
  start_cv_.notify_all();
  // The caller is a worker too: pull tasks until the batch drains.
  uint32_t finished = 0;
  for (;;) {
    const uint32_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= count) break;
    fn(order_.empty() ? i : order_[i]);
    ++finished;
  }
  std::unique_lock<std::mutex> lock(mu_);
  if (finished > 0 &&
      done_.fetch_add(finished, std::memory_order_acq_rel) + finished ==
          count) {
    done_cv_.notify_all();
  }
  done_cv_.wait(lock, [&] {
    return done_.load(std::memory_order_acquire) == count;
  });
  task_fn_ = nullptr;
  task_count_ = 0;
}

HostPool* HostPool::ForWorkers(uint32_t workers) {
  if (workers <= 1) return nullptr;
  // Destroyed at static destruction, which joins the pooled threads; no
  // machine outlives main(), so no batch can be in flight by then.
  static std::mutex registry_mu;
  static std::map<uint32_t, std::unique_ptr<HostPool>> registry;
  std::lock_guard<std::mutex> lock(registry_mu);
  std::unique_ptr<HostPool>& slot = registry[workers];
  if (slot == nullptr) slot = std::make_unique<HostPool>(workers);
  return slot.get();
}

HostPool* HostPool::Default() {
  static HostPool* pool = [] {
    uint32_t width = std::thread::hardware_concurrency();
    if (const char* env = std::getenv("PMG_HOST_THREADS")) {
      char* end = nullptr;
      const long parsed = std::strtol(env, &end, 10);
      PMG_CHECK_MSG(end != env && *end == '\0' && parsed >= 1,
                    "PMG_HOST_THREADS must be a positive integer, got '%s'",
                    env);
      width = static_cast<uint32_t>(parsed);
    }
    if (width == 0) width = 1;  // hardware_concurrency() may report 0
    return ForWorkers(width);
  }();
  return pool;
}

}  // namespace pmg::memsim
