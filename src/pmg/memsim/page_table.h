#ifndef PMG_MEMSIM_PAGE_TABLE_H_
#define PMG_MEMSIM_PAGE_TABLE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "pmg/common/types.h"

/// \file page_table.h
/// Simulated virtual memory: regions, pages, placement policies.
///
/// A Region is one allocation (e.g., one NumaArray). Regions are divided
/// into 2MB chunks; each chunk is backed either by one 2MB huge page or by
/// 512 4KB small pages, which lets the model express (a) explicit huge-page
/// allocation (Galois), (b) small pages, and (c) small pages with
/// Transparent Huge Pages, where the kernel promotes only a fraction of
/// chunks (Section 6.1: frameworks relying on THP still trail explicit huge
/// pages).

namespace pmg::memsim {

inline constexpr uint64_t kSmallPageBytes = 4096;
inline constexpr uint64_t kHugePageBytes = 2ull * 1024 * 1024;
inline constexpr PhysPage kInvalidFrame = ~0ull;

/// Page size requested for a region. k1G is accepted by the TLB model but
/// not by the page table (the paper excludes 1GB pages from its study).
enum class PageSizeClass : uint8_t { k4K = 0, k2M = 1, k1G = 2 };

/// Bytes covered by one page of the class.
constexpr uint64_t PageBytes(PageSizeClass cls) {
  switch (cls) {
    case PageSizeClass::k4K:
      return 4096;
    case PageSizeClass::k2M:
      return 2ull * 1024 * 1024;
    case PageSizeClass::k1G:
      return 1ull * 1024 * 1024 * 1024;
  }
  return 4096;
}

/// NUMA placement policy of a region (Figure 3).
///   kLocal:       all pages on `preferred_node`, spilling to other nodes
///                 only when it is full.
///   kInterleaved: pages round-robin across nodes by page index.
///   kBlocked:     first-touch; the page lands on the socket of the thread
///                 that first accesses it.
enum class Placement : uint8_t { kLocal = 0, kInterleaved = 1, kBlocked = 2 };

/// Allocation policy for one region.
struct PagePolicy {
  Placement placement = Placement::kInterleaved;
  PageSizeClass page_size = PageSizeClass::k4K;
  /// With page_size == k4K: model Linux THP, promoting a configured
  /// fraction of 2MB chunks to huge pages.
  bool thp = false;
  /// Preferred node for Placement::kLocal.
  NodeId preferred_node = 0;
};

/// Per-page state. `frame` is the first backing 4KB physical frame
/// (huge pages occupy 512 consecutive frames); kInvalidFrame = unmapped.
struct PageInfo {
  PhysPage frame = kInvalidFrame;
  NodeId node = 0;
  /// Access counters sampled by the migration daemon, reset every scan.
  uint32_t local_accesses = 0;
  uint32_t remote_accesses = 0;
  /// Most recent remote socket to access the page (migration target).
  uint8_t last_remote_node = 0;
  /// AutoNUMA hint fault armed: next access takes a kernel fault.
  bool hint_armed = false;
  bool dirty = false;
};

using RegionId = uint32_t;

/// One mapped allocation.
struct Region {
  RegionId id = 0;
  VirtAddr base = 0;
  uint64_t bytes = 0;
  PagePolicy policy;
  std::string name;
  /// Page records, ordered chunk by chunk.
  std::vector<PageInfo> pages;
  /// Index into `pages` of each 2MB chunk's first page.
  std::vector<uint32_t> chunk_first_page;
  /// Whether each chunk is backed by a single huge page.
  std::vector<uint8_t> chunk_is_huge;

  VirtAddr end() const { return base + bytes; }
};

/// Result of translating a virtual address.
struct PageLookup {
  Region* region = nullptr;
  PageInfo* page = nullptr;
  uint32_t page_index = 0;  // within region->pages
  VirtAddr page_base = 0;
  PageSizeClass cls = PageSizeClass::k4K;
};

/// Read-only result of translating a virtual address (the host-parallel
/// pricing pass runs one translation stream per virtual thread, so its
/// lookups must not touch the table's shared one-entry cache).
struct ConstPageLookup {
  const Region* region = nullptr;
  const PageInfo* page = nullptr;
  uint32_t page_index = 0;  // within region->pages
  VirtAddr page_base = 0;
  PageSizeClass cls = PageSizeClass::k4K;
};

/// The simulated page table: owns all regions and translates addresses.
/// Mutations (CreateRegion/DestroyRegion/Lookup's internal cache) are not
/// thread-safe and stay on the recording thread; LookupView is const and
/// safe to call concurrently while the table is quiescent.
class PageTable {
 public:
  /// `thp_percent`: fraction of chunks promoted when PagePolicy::thp is
  /// set. `seed` makes promotion decisions deterministic.
  PageTable(uint32_t thp_percent, uint64_t seed);

  PageTable(const PageTable&) = delete;
  PageTable& operator=(const PageTable&) = delete;

  /// Creates a region of `bytes` bytes and returns its id. The virtual
  /// base address is assigned by an internal bump allocator.
  RegionId CreateRegion(uint64_t bytes, const PagePolicy& policy,
                        std::string name);

  /// Unmaps a region. Frames are released by the caller (Machine).
  void DestroyRegion(RegionId id);

  /// Translates `addr`. Aborts if the address is not in any live region.
  PageLookup Lookup(VirtAddr addr);

  /// Const translation for concurrent readers. `hint_slot` is a
  /// caller-owned one-entry region cache (initialize to ~0u) replacing
  /// the shared `last_slot_`, so parallel translation streams each keep
  /// their own locality without racing on the table.
  ConstPageLookup LookupView(VirtAddr addr, uint32_t* hint_slot) const;

  Region& region(RegionId id);
  const Region& region(RegionId id) const;
  bool IsLive(RegionId id) const;

  /// Total pages currently mapped (frame assigned), for daemon costing.
  uint64_t mapped_pages() const { return mapped_pages_; }
  void NoteMapped() { ++mapped_pages_; }
  void NoteUnmapped(uint64_t n) { mapped_pages_ -= n; }

  /// Invokes `fn(region, page, page_base, cls)` for every mapped page.
  void ForEachMappedPage(
      const std::function<void(Region&, PageInfo&, VirtAddr, PageSizeClass)>&
          fn);

 private:
  struct Slot {
    Region region;
    bool live = false;
  };

  /// Rebuilds the sorted (base -> slot index) view used by Lookup.
  void RebuildIndex();

  uint32_t thp_percent_;
  uint64_t seed_;
  VirtAddr next_base_;
  std::vector<Slot> slots_;
  /// Sorted by base address; pairs of (base, slot index).
  std::vector<std::pair<VirtAddr, uint32_t>> index_;
  uint64_t mapped_pages_ = 0;
  /// One-entry lookup cache: graph kernels hammer few regions.
  uint32_t last_slot_ = ~0u;
};

}  // namespace pmg::memsim

#endif  // PMG_MEMSIM_PAGE_TABLE_H_
