#include "pmg/memsim/timings.h"

namespace pmg::memsim {

MemoryTimings DefaultTimings() { return MemoryTimings{}; }

}  // namespace pmg::memsim
