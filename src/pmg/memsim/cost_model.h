#ifndef PMG_MEMSIM_COST_MODEL_H_
#define PMG_MEMSIM_COST_MODEL_H_

#include <cstddef>
#include <cstdint>

#include "pmg/common/types.h"
#include "pmg/memsim/timings.h"

/// \file cost_model.h
/// The priced-event vocabulary of the simulated machine, factored out of
/// Machine so that exactly one piece of code maps (event class, timings)
/// to nanoseconds. Machine's charge sites call these functions on the hot
/// path; the pmg::whatif counterfactual re-pricer calls the same functions
/// on a recorded journal. Because both sides share the expressions —
/// including the double/integer conversion points, which are load-bearing
/// for bit-exactness — an identity re-pricing reproduces the machine's
/// clocks exactly, and a counterfactual differs only where the modified
/// timings say it should.
///
/// A CostClass is finer than a TraceBucket: it splits every bucket whose
/// per-event price depends on more than the timing struct's one number
/// (walk level count, fault page size, locality) so that `count x price`
/// reconstructs the recorded cost without loss. Compute and retry-backoff
/// time have no per-event class — they are priced by the caller in
/// arbitrary units and journaled as recorded sums.

namespace pmg::memsim {

/// Which memory system the machine runs (Figure 2).
enum class MachineKind {
  /// DRAM is main memory (paper's DRAM baseline and "Entropy").
  kDramMain,
  /// Optane PMM is main memory; DRAM is the per-socket near-memory cache.
  kMemoryMode,
  /// DRAM is main memory; PMM is byte-addressable storage reached through
  /// the StorageRead/StorageWrite interface (GridGraph's configuration).
  kAppDirect,
};

/// One priced event kind. User-side classes accumulate fractional
/// nanoseconds (latency / MLP); kernel-side classes cost an integral
/// number of nanoseconds per event.
enum class CostClass : uint8_t {
  // --- User side ---
  kCacheHit = 0,      ///< Private CPU-cache hit (never divided by MLP).
  kTlbWalk4,          ///< 4-level walk (4KB page).
  kTlbWalk3,          ///< 3-level walk (2MB page).
  kTlbWalk2,          ///< 2-level walk (1GB page).
  kDramLocal,         ///< DRAM main memory, same socket.
  kDramRemote,        ///< DRAM main memory, across the interconnect.
  kNearHitLocal,      ///< Memory mode: near-memory hit, local.
  kNearHitRemote,     ///< Memory mode: near-memory hit, remote.
  kPmmMissLocal,      ///< Memory mode: near-memory miss, local.
  kPmmMissRemote,     ///< Memory mode: near-memory miss, remote.
  kStorageLocal,      ///< App-direct storage op, local (never MLP-divided).
  kStorageRemote,     ///< App-direct storage op, remote.
  // --- Kernel side ---
  kMinorFaultSmall,   ///< First-touch mapping of a 4KB page.
  kMinorFaultHuge,    ///< First-touch mapping of a 2MB page.
  kHintFault,         ///< AutoNUMA hint fault.
  kMachineCheck,      ///< Machine-check handler (uncorrectable error).
  kCount,
};

inline constexpr size_t kCostClassCount =
    static_cast<size_t>(CostClass::kCount);
/// Classes below this index are user-side, at or above kernel-side.
inline constexpr size_t kFirstKernelCostClass =
    static_cast<size_t>(CostClass::kMinorFaultSmall);

constexpr const char* CostClassName(CostClass c) {
  switch (c) {
    case CostClass::kCacheHit:
      return "cache-hit";
    case CostClass::kTlbWalk4:
      return "tlb-walk-4";
    case CostClass::kTlbWalk3:
      return "tlb-walk-3";
    case CostClass::kTlbWalk2:
      return "tlb-walk-2";
    case CostClass::kDramLocal:
      return "dram-local";
    case CostClass::kDramRemote:
      return "dram-remote";
    case CostClass::kNearHitLocal:
      return "near-hit-local";
    case CostClass::kNearHitRemote:
      return "near-hit-remote";
    case CostClass::kPmmMissLocal:
      return "pmm-miss-local";
    case CostClass::kPmmMissRemote:
      return "pmm-miss-remote";
    case CostClass::kStorageLocal:
      return "storage-local";
    case CostClass::kStorageRemote:
      return "storage-remote";
    case CostClass::kMinorFaultSmall:
      return "minor-fault-small";
    case CostClass::kMinorFaultHuge:
      return "minor-fault-huge";
    case CostClass::kHintFault:
      return "hint-fault";
    case CostClass::kMachineCheck:
      return "machine-check";
    case CostClass::kCount:
      break;
  }
  return "?";
}

/// Integral pre-MLP latency of one user-side event. This is the value the
/// machine computes before multiplying by 1/MLP, so re-pricing can
/// reproduce `double(latency) * inv_mlp` with the identical operands.
inline SimNs UserLatencyNs(CostClass c, MachineKind kind,
                           const MemoryTimings& tm) {
  const SimNs step = kind == MachineKind::kMemoryMode ? tm.walk_step_pmm_ns
                                                      : tm.walk_step_dram_ns;
  switch (c) {
    case CostClass::kCacheHit:
      return tm.cpu_cache_hit_ns;
    case CostClass::kTlbWalk4:
      return 4 * step;
    case CostClass::kTlbWalk3:
      return 3 * step;
    case CostClass::kTlbWalk2:
      return 2 * step;
    case CostClass::kDramLocal:
      return tm.dram_local_ns;
    case CostClass::kDramRemote:
      return tm.dram_remote_ns;
    case CostClass::kNearHitLocal:
      return tm.near_mem_hit_local_ns;
    case CostClass::kNearHitRemote:
      return tm.near_mem_hit_remote_ns;
    case CostClass::kPmmMissLocal:
      return tm.near_mem_hit_local_ns + tm.near_mem_miss_extra_ns;
    case CostClass::kPmmMissRemote:
      return tm.near_mem_hit_remote_ns + tm.near_mem_miss_extra_ns;
    case CostClass::kStorageLocal:
      return tm.appdirect_local_ns;
    case CostClass::kStorageRemote:
      return tm.appdirect_remote_ns;
    default:  // kernel-side classes (faults, machine checks) cost 0 here
      break;
  }
  return 0;
}

/// The exact double the machine adds to a thread's user clock for one
/// event of class `c`. Cache hits and storage ops are not MLP-divided
/// (hits never leave the core; storage ops are dependent synchronous
/// I/O), matching Machine's charge sites expression for expression.
inline double UserEventCostNs(CostClass c, MachineKind kind,
                              const MemoryTimings& tm, double inv_mlp) {
  switch (c) {
    case CostClass::kCacheHit:
      return static_cast<double>(tm.cpu_cache_hit_ns);
    case CostClass::kStorageLocal:
      return static_cast<double>(tm.appdirect_local_ns);
    case CostClass::kStorageRemote:
      return static_cast<double>(tm.appdirect_remote_ns);
    default:  // every remaining (memory-latency) class is MLP-divided
      return static_cast<double>(UserLatencyNs(c, kind, tm)) * inv_mlp;
  }
}

/// Kernel costs scale by pmm_kernel_factor when main memory is PMM
/// (kernel data structures live in slower memory, Section 4.2).
inline SimNs ApplyKernelFactor(SimNs dram_cost, MachineKind kind,
                               const MemoryTimings& tm) {
  if (kind == MachineKind::kMemoryMode) {
    return static_cast<SimNs>(static_cast<double>(dram_cost) *
                              tm.pmm_kernel_factor);
  }
  return dram_cost;
}

/// Integral cost of one kernel-side event of class `c`.
inline SimNs KernelEventCostNs(CostClass c, MachineKind kind,
                               const MemoryTimings& tm) {
  switch (c) {
    case CostClass::kMinorFaultSmall:
      return ApplyKernelFactor(tm.fault_small_dram_ns, kind, tm);
    case CostClass::kMinorFaultHuge:
      return ApplyKernelFactor(tm.fault_huge_dram_ns, kind, tm);
    case CostClass::kHintFault:
      return ApplyKernelFactor(tm.fault_small_dram_ns, kind, tm);
    case CostClass::kMachineCheck:
      return ApplyKernelFactor(tm.machine_check_ns, kind, tm);
    default:  // user-side classes have no kernel component
      break;
  }
  return 0;
}

/// Byte counters of one socket's channels for one epoch,
/// [local/remote][seq/rand][read/write]; remote traffic crosses the
/// interconnect and is priced with the remote-bandwidth rows.
struct ChannelByteCounts {
  uint64_t dram[2][2][2] = {};
  uint64_t pmm[2][2][2] = {};
};

/// Epoch time of one socket's channels. `remote_factor` scales the
/// interconnect rows down (fault injection of a degraded link); 1.0
/// takes a branch-free path that is bit-identical to the pre-fault
/// pricing. The summation order is load-bearing: Machine and the whatif
/// re-pricer both call this, and the identity re-pricing must reproduce
/// the machine's roofline bit for bit.
inline SimNs ChannelTimeNs(const ChannelByteCounts& ch,
                           const MemoryTimings& tm, double remote_factor) {
  auto xfer_ns = [](uint64_t bytes, double gbs) {
    return static_cast<double>(bytes) / gbs;  // 1 GB/s == 1 byte/ns
  };
  auto side = [&](const uint64_t counters[2][2], const ChannelBandwidth& bw) {
    double ns = 0;
    ns += xfer_ns(counters[0][0], bw.seq_read_gbs);
    ns += xfer_ns(counters[0][1], bw.seq_write_gbs);
    ns += xfer_ns(counters[1][0], bw.rand_read_gbs);
    ns += xfer_ns(counters[1][1], bw.rand_write_gbs);
    return ns;
  };
  double ns = 0;
  ns += side(ch.dram[0], tm.dram_local);
  double dram_remote = side(ch.dram[1], tm.dram_remote);
  if (remote_factor != 1.0) dram_remote /= remote_factor;
  ns += dram_remote;
  ns += side(ch.pmm[0], tm.pmm_local);
  double pmm_remote = side(ch.pmm[1], tm.pmm_remote);
  if (remote_factor != 1.0) pmm_remote /= remote_factor;
  ns += pmm_remote;
  return static_cast<SimNs>(ns);
}

}  // namespace pmg::memsim

#endif  // PMG_MEMSIM_COST_MODEL_H_
