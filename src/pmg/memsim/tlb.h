#ifndef PMG_MEMSIM_TLB_H_
#define PMG_MEMSIM_TLB_H_

#include <cstdint>
#include <vector>

#include "pmg/common/types.h"
#include "pmg/memsim/page_table.h"

/// \file tlb.h
/// Per-thread translation lookaside buffer with separate entry pools per
/// page-size class, mirroring the paper's machine: a 4-way associative data
/// TLB with 64 entries for small pages, 32 entries for 2MB pages, and 4
/// entries for 1GB pages (Section 3). Huge pages multiply "TLB reach"
/// (entries x page size), which is the mechanism behind Figure 5's huge-page
/// wins.

namespace pmg::memsim {

/// Geometry of the per-class TLB arrays.
struct TlbConfig {
  uint32_t entries_4k = 64;
  uint32_t ways_4k = 4;
  uint32_t entries_2m = 32;
  uint32_t ways_2m = 4;
  uint32_t entries_1g = 4;
  uint32_t ways_1g = 4;
};

/// A set-associative TLB for one hardware thread.
class Tlb {
 public:
  explicit Tlb(const TlbConfig& config);

  /// Returns true on hit (and refreshes LRU). Does not insert on miss.
  bool Lookup(VirtAddr page_base, PageSizeClass cls);

  /// Installs a translation, evicting the LRU way of its set.
  void Insert(VirtAddr page_base, PageSizeClass cls);

  /// Drops one translation if present (migration shootdown).
  void InvalidatePage(VirtAddr page_base, PageSizeClass cls);

  /// Drops everything (full shootdown / context switch).
  void InvalidateAll();

 private:
  struct Array {
    uint32_t sets = 0;
    uint32_t ways = 0;
    std::vector<VirtAddr> tags;  // sets x ways, kNoTag = empty
    std::vector<uint8_t> age;    // LRU ages per way

    void Init(uint32_t entries, uint32_t ways_in);
    bool Lookup(VirtAddr key);
    void Insert(VirtAddr key);
    void Invalidate(VirtAddr key);
    void Clear();
  };

  Array& ArrayFor(PageSizeClass cls);

  Array small_;
  Array huge_;
  Array giant_;
};

}  // namespace pmg::memsim

#endif  // PMG_MEMSIM_TLB_H_
