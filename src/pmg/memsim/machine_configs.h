#ifndef PMG_MEMSIM_MACHINE_CONFIGS_H_
#define PMG_MEMSIM_MACHINE_CONFIGS_H_

#include <cstdint>

#include "pmg/memsim/machine.h"

/// \file machine_configs.h
/// Factory configurations for the machines of the paper's evaluation
/// (Section 3), with capacities divided by a scale factor so that
/// scaled-down graphs keep the paper's working-set-to-capacity ratios.
/// At the default scale (1/16384):
///   - Optane PMM machine: 12MiB DRAM/socket (near-memory),
///     192MiB PMM/socket, 2 sockets x 24 cores x 2 SMT = 96 threads.
///   - DRAM machine: same box with PMM in app-direct mode unused.
///   - "Entropy": 2 sockets x 28 cores, 48MiB DRAM/socket, 56 threads.
///   - Stampede2 host: 2 sockets x 24 cores, 6MiB DRAM/socket, 48 threads.

namespace pmg::memsim {

/// Default capacity scale: all byte capacities are divided by this.
inline constexpr uint64_t kDefaultCapacityScale = 16384;

/// The paper's 6TB Optane PMM machine in memory mode.
MachineConfig OptanePmmConfig(uint64_t scale = kDefaultCapacityScale);

/// The same machine with PMM in app-direct mode and DRAM as main memory
/// (the paper's DRAM baseline).
MachineConfig DramOnlyConfig(uint64_t scale = kDefaultCapacityScale);

/// The same machine in app-direct mode with PMM as storage (GridGraph).
MachineConfig AppDirectConfig(uint64_t scale = kDefaultCapacityScale);

/// The 4-socket 1.5TB DRAM machine, restricted to 2 sockets / 56 threads
/// as in the paper's Entropy experiments.
MachineConfig EntropyConfig(uint64_t scale = kDefaultCapacityScale);

/// One Stampede2 Skylake host (192GB DRAM, 48 threads).
MachineConfig StampedeHostConfig(uint64_t scale = kDefaultCapacityScale);

}  // namespace pmg::memsim

#endif  // PMG_MEMSIM_MACHINE_CONFIGS_H_
