#include "pmg/memsim/near_memory.h"

#include "pmg/common/check.h"

namespace pmg::memsim {

namespace {
constexpr PhysPage kNoFrame = ~0ull;

/// Physical pages land in cache sets effectively at random on real
/// machines (the kernel's free lists scatter physical allocation), so the
/// set index is a hash of the frame number rather than a plain modulo —
/// conflicts are statistical, not systematic.
uint64_t SetHash(PhysPage frame) {
  uint64_t x = frame + 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}
}  // namespace

NearMemoryCache::NearMemoryCache(uint32_t sockets,
                                 uint64_t frames_per_socket, uint32_t ways)
    : ways_(ways) {
  PMG_CHECK(sockets > 0 && frames_per_socket > 0 && ways > 0);
  PMG_CHECK_MSG(frames_per_socket % ways == 0,
                "near-memory frames must divide evenly into ways");
  sets_ = frames_per_socket / ways;
  tags_.resize(sockets);
  dirty_.resize(sockets);
  age_.resize(sockets);
  for (uint32_t s = 0; s < sockets; ++s) {
    tags_[s].assign(frames_per_socket, kNoFrame);
    dirty_[s].assign(frames_per_socket, 0);
    age_[s].assign(frames_per_socket, 0);
  }
}

uint64_t NearMemoryCache::SetIndex(PhysPage frame) const {
  return SetHash(frame) % sets_;
}

NearMemoryCache::Result NearMemoryCache::Access(NodeId node, PhysPage frame,
                                                bool write) {
  PMG_CHECK(node < tags_.size());
  const uint64_t base = SetIndex(frame) * ways_;
  auto& tags = tags_[node];
  auto& dirty = dirty_[node];
  Result out;

  if (ways_ == 1) {
    // Direct-mapped fast path (the hardware's configuration).
    if (tags[base] == frame) {
      out.hit = true;
      if (write) dirty[base] = 1;
      return out;
    }
    out.writeback = tags[base] != kNoFrame && dirty[base] != 0;
    tags[base] = frame;
    dirty[base] = write ? 1 : 0;
    return out;
  }

  auto& age = age_[node];
  uint32_t victim = 0;
  for (uint32_t w = 0; w < ways_; ++w) {
    if (tags[base + w] == frame) {
      // Hit: refresh LRU.
      for (uint32_t v = 0; v < ways_; ++v) {
        if (age[base + v] < age[base + w]) ++age[base + v];
      }
      age[base + w] = 0;
      out.hit = true;
      if (write) dirty[base + w] = 1;
      return out;
    }
    if (tags[base + w] == kNoFrame) {
      victim = w;
    } else if (tags[base + victim] != kNoFrame &&
               age[base + w] > age[base + victim]) {
      victim = w;
    }
  }
  out.writeback = tags[base + victim] != kNoFrame && dirty[base + victim] != 0;
  for (uint32_t v = 0; v < ways_; ++v) ++age[base + v];
  tags[base + victim] = frame;
  dirty[base + victim] = write ? 1 : 0;
  age[base + victim] = 0;
  return out;
}

void NearMemoryCache::Invalidate(NodeId node, PhysPage frame,
                                 uint64_t count) {
  PMG_CHECK(node < tags_.size());
  for (uint64_t i = 0; i < count; ++i) {
    const uint64_t base = SetIndex(frame + i) * ways_;
    for (uint32_t w = 0; w < ways_; ++w) {
      if (tags_[node][base + w] == frame + i) {
        tags_[node][base + w] = kNoFrame;
        dirty_[node][base + w] = 0;
      }
    }
  }
}

double NearMemoryCache::Occupancy(NodeId node) const {
  PMG_CHECK(node < tags_.size());
  uint64_t used = 0;
  for (PhysPage t : tags_[node]) {
    if (t != kNoFrame) ++used;
  }
  return static_cast<double>(used) / static_cast<double>(tags_[node].size());
}

}  // namespace pmg::memsim
