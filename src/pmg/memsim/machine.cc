#include "pmg/memsim/machine.h"

#include <algorithm>
#include <string>

#include "pmg/common/check.h"

namespace pmg::memsim {

Machine::Machine(const MachineConfig& config)
    : config_(config), pages_(config.thp_percent, config.seed) {
  const NumaTopology& topo = config_.topology;
  PMG_CHECK(topo.sockets > 0);
  PMG_CHECK(config_.MainBytesPerSocket() > 0);

  if (config_.kind == MachineKind::kMemoryMode) {
    PMG_CHECK_MSG(topo.dram_bytes_per_socket > 0,
                  "memory mode needs DRAM for near-memory");
    near_mem_ = std::make_unique<NearMemoryCache>(
        topo.sockets, topo.dram_bytes_per_socket / kSmallPageBytes,
        config_.near_mem_ways);
  }

  PMG_CHECK(config_.timings.mem_parallelism >= 1.0);
  inv_mlp_ = 1.0 / config_.timings.mem_parallelism;
  threads_.resize(topo.TotalThreads());
  channels_.resize(topo.sockets);
  cost_fills_.resize(topo.sockets);
  const uint64_t frames_per_node =
      config_.MainBytesPerSocket() / kSmallPageBytes;
  frames_capacity_.assign(topo.sockets, frames_per_node);
  frames_used_.assign(topo.sockets, 0);
  free_runs_.resize(topo.sockets);
  frame_stride_ = frames_per_node + 1;
}

Machine::ThreadState& Machine::Thread(ThreadId t) {
  PMG_CHECK_MSG(t < threads_.size(), "thread id %u out of range", t);
  ThreadState& ts = threads_[t];
  if (ts.tlb == nullptr) {
    ts.tlb = std::make_unique<Tlb>(config_.tlb);
    ts.cache = std::make_unique<CpuCache>(config_.cpu_cache_lines);
  }
  return ts;
}

uint64_t Machine::MainMemoryCapacity() const {
  return config_.MainBytesPerSocket() * config_.topology.sockets;
}

uint64_t Machine::NodeBytesUsed(NodeId node) const {
  PMG_CHECK(node < frames_used_.size());
  uint64_t free_frames = 0;
  for (const auto& [frame, count] : free_runs_[node]) {
    (void)frame;
    free_frames += count;
  }
  return (frames_used_[node] - free_frames) * kSmallPageBytes;
}

RegionId Machine::Alloc(uint64_t bytes, const PagePolicy& policy,
                        std::string_view name) {
  const RegionId id = pages_.CreateRegion(bytes, policy, std::string(name));
  for (AccessObserver* o : observers_) {
    o->OnAlloc(id, pages_.region(id).base, bytes, name);
  }
  if (tier_ != nullptr) [[unlikely]] {
    tier_->OnTierAlloc(id, pages_.region(id).base, bytes, name);
  }
  return id;
}

void Machine::Free(RegionId id) {
  // Pending recorded operations may reference the dying region: price
  // them while its pages are still mapped.
  if (host_recording_) HostSettle();
  for (AccessObserver* o : observers_) o->OnFree(id);
  if (tier_ != nullptr) [[unlikely]] {
    tier_->OnTierFree(id);
  }
  pages_.ForEachMappedPage(
      [&](Region& r, PageInfo& p, VirtAddr /*base*/, PageSizeClass cls) {
        if (&r != &pages_.region(id)) return;
        const uint64_t n = PageBytes(cls) / kSmallPageBytes;
        if (near_mem_ != nullptr) near_mem_->Invalidate(p.node, p.frame, n);
        FreeFrames(p.node, p.frame, n);
        p.frame = kInvalidFrame;
      });
  pages_.DestroyRegion(id);
}

VirtAddr Machine::BaseOf(RegionId id) const { return pages_.region(id).base; }

NodeId Machine::PlacePage(const Region& region, uint32_t page_index,
                          NodeId toucher_socket) const {
  switch (region.policy.placement) {
    case Placement::kLocal:
      return region.policy.preferred_node % config_.topology.sockets;
    case Placement::kInterleaved: {
      // Rotate the starting node per region (hashed from its base) so
      // that many small allocations still spread across sockets.
      const uint64_t rotate =
          (region.base * 0x9e3779b97f4a7c15ull) >> 32;
      return (page_index + rotate) % config_.topology.sockets;
    }
    case Placement::kBlocked:
      return toucher_socket;
  }
  return 0;
}

PhysPage Machine::AllocFrames(NodeId node, uint64_t n) {
  const uint32_t sockets = config_.topology.sockets;
  for (uint32_t attempt = 0; attempt < sockets; ++attempt) {
    const NodeId nd = (node + attempt) % sockets;
    // Reuse a freed run of the exact size first.
    auto& runs = free_runs_[nd];
    for (size_t i = 0; i < runs.size(); ++i) {
      if (runs[i].second == n) {
        const PhysPage f = runs[i].first;
        runs[i] = runs.back();
        runs.pop_back();
        return f;
      }
    }
    if (frames_used_[nd] + n <= frames_capacity_[nd]) {
      const PhysPage f = uint64_t{nd} * frame_stride_ + frames_used_[nd];
      frames_used_[nd] += n;
      return f;
    }
  }
  return kInvalidFrame;
}

void Machine::FreeFrames(NodeId node, PhysPage frame, uint64_t n) {
  free_runs_[node].emplace_back(frame, n);
}

NodeId Machine::NodeOfFrame(PhysPage frame) const {
  return static_cast<NodeId>(frame / frame_stride_);
}

SimNs Machine::KernelCost(SimNs dram_cost) const {
  return ApplyKernelFactor(dram_cost, config_.kind, config_.timings);
}

void Machine::HandleFault(ThreadId t, const PageLookup& lk) {
  const uint64_t n = PageBytes(lk.cls) / kSmallPageBytes;
  const NodeId target =
      PlacePage(*lk.region, lk.page_index, SocketOfThread(t));
  const PhysPage f = AllocFrames(target, n);
  PMG_CHECK_MSG(f != kInvalidFrame,
                "simulated machine out of memory mapping region '%s'",
                lk.region->name.c_str());
  lk.page->frame = f;
  lk.page->node = NodeOfFrame(f);
  pages_.NoteMapped();
  if (lk.cls == PageSizeClass::k4K) {
    ++stats_.pages_mapped_small;
  } else {
    ++stats_.pages_mapped_huge;
  }
  ++stats_.minor_faults;
  const CostClass fc = lk.cls == PageSizeClass::k4K
                           ? CostClass::kMinorFaultSmall
                           : CostClass::kMinorFaultHuge;
  ThreadState& ts = Thread(t);
  ChargeKernel(ts, TraceBucket::kMinorFault,
               KernelEventCostNs(fc, config_.kind, config_.timings));
  CountCost(ts, fc);
  if (tier_ != nullptr) [[unlikely]] {
    tier_->OnTierPagePlaced(lk.region->id, lk.page_base, lk.cls,
                            lk.page->node, t, stats_.total_ns);
  }
}

void Machine::QuarantinePage(ThreadId t, const PageLookup& lk) {
  const uint64_t n = PageBytes(lk.cls) / kSmallPageBytes;
  const NodeId old_node = lk.page->node;
  if (near_mem_ != nullptr) {
    near_mem_->Invalidate(old_node, lk.page->frame, n);
  }
  // Poisoned frames are retired, NOT returned to the free lists: the
  // node's capacity shrinks for the rest of the run, as on real hardware.
  const PhysPage nf = AllocFrames(old_node, n);
  PMG_CHECK_MSG(nf != kInvalidFrame,
                "simulated machine out of memory remapping quarantined "
                "page in region '%s'",
                lk.region->name.c_str());
  lk.page->frame = nf;
  lk.page->node = NodeOfFrame(nf);
  ++stats_.media_ue_events;
  stats_.pages_quarantined += n;
  const SimNs mce =
      KernelEventCostNs(CostClass::kMachineCheck, config_.kind, config_.timings);
  ThreadState& tq = Thread(t);
  ChargeKernel(tq, TraceBucket::kMachineCheck, mce);
  CountCost(tq, CostClass::kMachineCheck);
  stats_.machine_check_ns += mce;
  // The remap invalidates the stale translation on every core, and the
  // machine-check flow flushes the poisoned lines from the private CPU
  // caches so no later hit is served from a retired frame.
  const uint64_t first_line = lk.page_base / kCacheLineBytes;
  const uint64_t page_lines = PageBytes(lk.cls) / kCacheLineBytes;
  for (ThreadState& ts : threads_) {
    if (ts.tlb != nullptr) ts.tlb->InvalidatePage(lk.page_base, lk.cls);
    if (ts.cache != nullptr) ts.cache->InvalidateRange(first_line, page_lines);
  }
  if (trace_ != nullptr) [[unlikely]] {
    trace_->OnInstant(TraceInstantKind::kQuarantine, t, stats_.total_ns, n);
  }
  if (fault_hook_ != nullptr) {
    fault_hook_->OnQuarantined(lk.page_base, PageBytes(lk.cls),
                               lk.region->name);
  }
  if (tier_ != nullptr) [[unlikely]] {
    tier_->OnTierQuarantine(lk.page_base, lk.cls, old_node, lk.page->node,
                            stats_.total_ns);
  }
}

void Machine::ChargeChannel(NodeId node, bool pmm, bool remote,
                            bool sequential, bool write, uint64_t bytes) {
  ChannelBytes& ch = channels_[node];
  if (pmm) {
    ch.pmm[remote ? 1 : 0][sequential ? 0 : 1][write ? 1 : 0] += bytes;
  } else {
    ch.dram[remote ? 1 : 0][sequential ? 0 : 1][write ? 1 : 0] += bytes;
  }
}

SimNs Machine::ChannelTime(const ChannelBytes& ch,
                           double remote_factor) const {
  // The body (and its load-bearing summation order) lives in
  // cost_model.h, shared with the whatif re-pricer.
  return ChannelTimeNs(ch, config_.timings, remote_factor);
}

void Machine::Access(ThreadId t, VirtAddr addr, uint32_t bytes,
                     AccessType type) {
  if (!in_epoch_) BeginEpoch(1);
  if (host_recording_) {
    HostRecord(t, addr, 0, kHostAccess, static_cast<uint8_t>(type));
    (void)bytes;
    return;
  }
  if (!observers_.empty()) [[unlikely]] {
    for (AccessObserver* o : observers_) o->OnAccess(t, addr, bytes, type);
  }
  ThreadState& ts = Thread(t);
  const MemoryTimings& tm = config_.timings;

  ++stats_.accesses;
  if (IsRead(type)) ++stats_.reads;
  if (IsWrite(type)) ++stats_.writes;

  const uint64_t line = addr / kCacheLineBytes;
  const bool sequential = line == ts.last_line + 1;
  const bool was_resident = ts.cache->AccessLine(line);
  ts.last_line = line;
  if (was_resident) {
    ++stats_.cpu_cache_hits;
    ChargeUser(ts, TraceBucket::kCpuCacheHit,
               UserEventCostNs(CostClass::kCacheHit, config_.kind, tm,
                               inv_mlp_));
    CountCost(ts, CostClass::kCacheHit);
    if (trace_ != nullptr) [[unlikely]] {
      // The region lookup stays off the untraced hot path: hits never
      // consult the page table unless attribution needs the region id.
      ChargeRegion(pages_.Lookup(addr).region->id,
                   static_cast<double>(tm.cpu_cache_hit_ns));
    }
    return;
  }
  ++stats_.cpu_cache_misses;

  PageLookup lk = pages_.Lookup(addr);
  if (lk.page->frame == kInvalidFrame) HandleFault(t, lk);

  // This access's user-side charges, for per-region attribution.
  double access_user_ns = 0.0;
  if (fault_hook_ != nullptr) [[unlikely]] {
    // Only cache misses reach the hook: poison lives on media, and a line
    // already resident in the CPU cache was filled before the error armed.
    const FaultAction fa = fault_hook_->OnMediaAccess(
        t, addr, config_.kind == MachineKind::kMemoryMode);
    if (fa.stall_ns > 0) {
      // Retried issues are dependent replays: MLP cannot hide them.
      ChargeUser(ts, TraceBucket::kRetryBackoff,
                 static_cast<double>(fa.stall_ns));
      access_user_ns += static_cast<double>(fa.stall_ns);
      stats_.fault_stall_ns += fa.stall_ns;
      stats_.fault_retries += fa.retries;
    }
    // Quarantine before pricing, so the access below is served by the
    // freshly mapped replacement frame, as after a real machine check.
    if (fa.uncorrectable) QuarantinePage(t, lk);
  }

  if (lk.page->hint_armed) {
    // AutoNUMA hint fault: the kernel unmapped the PTE to sample access
    // locality; this access traps.
    lk.page->hint_armed = false;
    ++stats_.hint_faults;
    ChargeKernel(ts, TraceBucket::kHintFault,
                 KernelEventCostNs(CostClass::kHintFault, config_.kind, tm));
    CountCost(ts, CostClass::kHintFault);
    ts.tlb->InvalidatePage(lk.page_base, lk.cls);
  }

  if (ts.tlb->Lookup(lk.page_base, lk.cls)) {
    ++stats_.tlb_hits;
  } else {
    ++stats_.tlb_misses;
    const CostClass wc = lk.cls == PageSizeClass::k4K   ? CostClass::kTlbWalk4
                         : lk.cls == PageSizeClass::k2M ? CostClass::kTlbWalk3
                                                        : CostClass::kTlbWalk2;
    const SimNs walk = UserLatencyNs(wc, config_.kind, tm);
    const double walk_ns = static_cast<double>(walk) * inv_mlp_;
    ChargeUser(ts, TraceBucket::kTlbWalk, walk_ns);
    CountCost(ts, wc);
    access_user_ns += walk_ns;
    stats_.page_walk_ns += walk;
    ts.tlb->Insert(lk.page_base, lk.cls);
  }

  const NodeId home = lk.page->node;
  const NodeId socket = SocketOfThread(t);
  const bool local = home == socket;
  if (local) {
    ++stats_.local_accesses;
  } else {
    ++stats_.remote_accesses;
  }
  if (config_.migration.enabled) {
    if (local) {
      ++lk.page->local_accesses;
    } else {
      ++lk.page->remote_accesses;
      lk.page->last_remote_node = static_cast<uint8_t>(socket);
    }
  }

  const bool write = IsWrite(type);
  SimNs lat = 0;
  TraceBucket lat_bucket = TraceBucket::kDramLocal;
  CostClass lat_class = CostClass::kDramLocal;
  if (config_.kind == MachineKind::kMemoryMode) {
    const PhysPage frame =
        lk.page->frame + ((addr - lk.page_base) / kSmallPageBytes);
    const NearMemoryCache::Result r = near_mem_->Access(home, frame, write);
    if (r.hit) {
      ++stats_.near_mem_hits;
      lat_class = local ? CostClass::kNearHitLocal : CostClass::kNearHitRemote;
      lat = UserLatencyNs(lat_class, config_.kind, tm);
      lat_bucket = local ? TraceBucket::kNearMemHitLocal
                         : TraceBucket::kNearMemHitRemote;
    } else {
      ++stats_.near_mem_misses;
      lat_class = local ? CostClass::kPmmMissLocal : CostClass::kPmmMissRemote;
      lat = UserLatencyNs(lat_class, config_.kind, tm);
      lat_bucket = TraceBucket::kPmmMediaMiss;
      // 4KB fill from PMM media; dirty victims are written back first.
      // Fills are media-side sequential bursts, local to the home socket.
      ChargeChannel(home, /*pmm=*/true, /*remote=*/false,
                    /*sequential=*/true, /*write=*/false, kSmallPageBytes);
      stats_.pmm_read_bytes += kSmallPageBytes;
      if (trace_cost_) [[unlikely]] {
        cost_fills_[home].fill_bytes += kSmallPageBytes;
      }
      if (r.writeback) {
        ++stats_.near_mem_writebacks;
        ChargeChannel(home, true, false, true, true, kSmallPageBytes);
        stats_.pmm_write_bytes += kSmallPageBytes;
        if (trace_cost_) [[unlikely]] {
          cost_fills_[home].writeback_bytes += kSmallPageBytes;
        }
      }
    }
    ChargeChannel(home, /*pmm=*/false, !local, sequential, write,
                  kCacheLineBytes);
    stats_.dram_bytes += kCacheLineBytes;
  } else {
    lat_class = local ? CostClass::kDramLocal : CostClass::kDramRemote;
    lat = UserLatencyNs(lat_class, config_.kind, tm);
    lat_bucket =
        local ? TraceBucket::kDramLocal : TraceBucket::kDramRemote;
    ChargeChannel(home, /*pmm=*/false, !local, sequential, write,
                  kCacheLineBytes);
    stats_.dram_bytes += kCacheLineBytes;
  }
  const double lat_ns = static_cast<double>(lat) * inv_mlp_;
  ChargeUser(ts, lat_bucket, lat_ns);
  CountCost(ts, lat_class);
  access_user_ns += lat_ns;
  if (trace_ != nullptr) [[unlikely]] {
    ChargeRegion(lk.region->id, access_user_ns);
  }
  (void)bytes;
}

void Machine::AccessRange(ThreadId t, VirtAddr addr, uint64_t bytes,
                          AccessType type) {
  if (bytes == 0) return;
  const VirtAddr first_line = addr / kCacheLineBytes;
  const VirtAddr last_line = (addr + bytes - 1) / kCacheLineBytes;
  for (VirtAddr line = first_line; line <= last_line; ++line) {
    // Pass the precise byte extent within the line: pricing only looks at
    // the line number, but an attached observer checks bounds and overlap
    // byte-exactly, and must not see neighbouring bytes that a blocked
    // partition never touched.
    const VirtAddr lo = std::max(addr, line * kCacheLineBytes);
    const VirtAddr hi = std::min(addr + bytes, (line + 1) * kCacheLineBytes);
    Access(t, lo, static_cast<uint32_t>(hi - lo), type);
  }
}

void Machine::AddCompute(ThreadId t, SimNs ns) {
  if (!in_epoch_) BeginEpoch(1);
  if (host_recording_) {
    HostRecord(t, ns, 0, kHostCompute, 0);
    return;
  }
  ChargeUser(Thread(t), TraceBucket::kCompute, static_cast<double>(ns));
}

// Storage I/O is priced with the app-direct rows in every machine kind:
// an app-direct namespace can be carved out of the same media alongside
// memory-mode interleave sets, which is how the checkpoint store persists
// state on machines whose main memory is DRAM or memory-mode PMM.

void Machine::StorageRead(ThreadId t, uint64_t bytes, NodeId node,
                          bool sequential, bool remote) {
  if (!in_epoch_) BeginEpoch(1);
  if (host_recording_) {
    // The fault hook is null whenever recording is on (eligibility), so
    // skipping the hook dispatch here prices identically.
    HostRecord(t, bytes, node, kHostStorage,
               static_cast<uint8_t>((sequential ? 2 : 0) | (remote ? 4 : 0)));
    return;
  }
  if (fault_hook_ != nullptr) [[unlikely]] {
    const SimNs stall =
        fault_hook_->OnStorageOp(t, bytes, /*write=*/false);
    if (stall > 0) {
      ChargeUser(Thread(t), TraceBucket::kRetryBackoff,
                 static_cast<double>(stall));
      stats_.fault_stall_ns += stall;
    }
  }
  ChargeChannel(node % config_.topology.sockets, /*pmm=*/true, remote,
                sequential, /*write=*/false, bytes);
  stats_.storage_read_bytes += bytes;
  const CostClass sc =
      remote ? CostClass::kStorageRemote : CostClass::kStorageLocal;
  ThreadState& ts = Thread(t);
  ChargeUser(ts, TraceBucket::kStorageIo,
             UserEventCostNs(sc, config_.kind, config_.timings, inv_mlp_));
  CountCost(ts, sc);
}

void Machine::StorageWrite(ThreadId t, uint64_t bytes, NodeId node,
                           bool sequential, bool remote) {
  if (!in_epoch_) BeginEpoch(1);
  if (host_recording_) {
    HostRecord(t, bytes, node, kHostStorage,
               static_cast<uint8_t>(1 | (sequential ? 2 : 0) |
                                    (remote ? 4 : 0)));
    return;
  }
  if (fault_hook_ != nullptr) [[unlikely]] {
    // May throw SimulatedCrash: a crash here is what tears a checkpoint
    // whose host-side buffer was mutated before this priced write.
    const SimNs stall = fault_hook_->OnStorageOp(t, bytes, /*write=*/true);
    if (stall > 0) {
      ChargeUser(Thread(t), TraceBucket::kRetryBackoff,
                 static_cast<double>(stall));
      stats_.fault_stall_ns += stall;
    }
  }
  ChargeChannel(node % config_.topology.sockets, /*pmm=*/true, remote,
                sequential, /*write=*/true, bytes);
  stats_.storage_write_bytes += bytes;
  const CostClass sc =
      remote ? CostClass::kStorageRemote : CostClass::kStorageLocal;
  ThreadState& ts = Thread(t);
  ChargeUser(ts, TraceBucket::kStorageIo,
             UserEventCostNs(sc, config_.kind, config_.timings, inv_mlp_));
  CountCost(ts, sc);
}

void Machine::BeginEpoch(uint32_t active_threads) {
  PMG_CHECK(!in_epoch_);
  PMG_CHECK(active_threads >= 1 && active_threads <= MaxThreads());
  for (ThreadState& ts : threads_) {
    ts.user_ns = 0;
    ts.kernel_ns = 0;
    if (trace_ != nullptr) [[unlikely]] {
      std::fill(std::begin(ts.user_bucket), std::end(ts.user_bucket), 0.0);
      std::fill(std::begin(ts.kernel_bucket), std::end(ts.kernel_bucket),
                SimNs{0});
    }
    if (trace_cost_) [[unlikely]] {
      std::fill(std::begin(ts.cost_count), std::end(ts.cost_count),
                uint64_t{0});
    }
  }
  for (ChannelBytes& ch : channels_) ch = ChannelBytes{};
  if (trace_cost_) [[unlikely]] {
    for (auto& f : cost_fills_) f = EpochTrace::CostRecord::SocketFill{};
  }
  epoch_active_threads_ = active_threads;
  in_epoch_ = true;
  for (AccessObserver* o : observers_) o->OnEpochBegin(active_threads);
  host_recording_ = HostPhasedEligible(active_threads);
  if (host_recording_) HostBeginRecord();
}

EpochReport Machine::EndEpoch() {
  PMG_CHECK(in_epoch_);
  if (host_recording_) {
    HostSettle();
    host_recording_ = false;
  }
  const uint64_t epoch_index = stats_.epochs;
  SimNs lat = 0;
  SimNs crit_user = 0;
  SimNs crit_kernel = 0;
  uint32_t crit_index = 0;
  for (uint32_t i = 0; i < threads_.size(); ++i) {
    const ThreadState& ts = threads_[i];
    const SimNs user = static_cast<SimNs>(ts.user_ns);
    const SimNs total = user + ts.kernel_ns;
    if (total > lat) {
      lat = total;
      crit_user = user;
      crit_kernel = ts.kernel_ns;
      crit_index = i;
    }
  }
  const SimNs crit_user_base = crit_user;
  double remote_factor = 1.0;
  if (fault_hook_ != nullptr) [[unlikely]] {
    remote_factor = fault_hook_->RemoteBandwidthFactor(epoch_index);
    PMG_CHECK_MSG(remote_factor > 0.0 && remote_factor <= 1.0,
                  "remote bandwidth factor must be in (0, 1]");
    if (remote_factor < 1.0) ++stats_.link_degraded_epochs;
  }
  SimNs bw = 0;
  for (const ChannelBytes& ch : channels_) {
    bw = std::max(bw, ChannelTime(ch, remote_factor));
  }

  EpochReport report;
  report.latency_path_ns = lat;
  report.bandwidth_path_ns = bw;
  report.bandwidth_bound = bw > lat;
  SimNs total = std::max(lat, bw);
  if (report.bandwidth_bound) {
    crit_user += bw - lat;
    ++stats_.bandwidth_bound_epochs;
  }

  SimNs daemon = 0;
  if (config_.migration.enabled &&
      stats_.total_ns + total - last_scan_ns_ >=
          config_.migration.scan_interval_ns) {
    last_scan_ns_ = stats_.total_ns + total;
    daemon = RunMigrationDaemon();
  }
  report.daemon_ns = daemon;
  report.total_ns = total + daemon;

  const SimNs epoch_start_ns = stats_.total_ns;
  stats_.user_ns += crit_user;
  stats_.kernel_ns += crit_kernel + daemon;
  stats_.total_ns += report.total_ns;
  ++stats_.epochs;
  in_epoch_ = false;
  if (trace_ != nullptr) [[unlikely]] {
    // Before observers and the fault hook: the epoch's accounting is
    // final here, and a SimulatedCrash from the hook below must not lose
    // the crashing epoch's trace.
    EmitEpochTrace(epoch_index, report, epoch_start_ns, crit_index,
                   crit_user_base, crit_kernel, remote_factor);
  }
  if (tier_ != nullptr) [[unlikely]] {
    TierEpochSample sample;
    sample.epoch_index = epoch_index;
    sample.start_ns = epoch_start_ns;
    sample.total_ns = report.total_ns;
    sample.daemon_ns = daemon;
    sample.migrations = daemon > 0 ? last_daemon_.migrated : 0;
    sample.nodes.resize(config_.topology.sockets);
    for (NodeId n = 0; n < config_.topology.sockets; ++n) {
      TierEpochSample::NodeSample& ns = sample.nodes[n];
      ns.bytes_used = NodeBytesUsed(n);
      const ChannelBytes& ch = channels_[n];
      for (int a = 0; a < 2; ++a) {
        for (int s = 0; s < 2; ++s) {
          for (int w = 0; w < 2; ++w) {
            ns.dram_bytes += ch.dram[a][s][w];
            ns.pmm_bytes += ch.pmm[a][s][w];
          }
        }
      }
    }
    tier_->OnTierEpoch(sample);
  }
  if (!observers_.empty()) [[unlikely]] {
    uint64_t races = 0;
    for (AccessObserver* o : observers_) races += o->OnEpochEnd();
    stats_.sancheck_races += races;
    if (races > 0) ++stats_.sancheck_race_epochs;
  }
  if (fault_hook_ != nullptr) [[unlikely]] {
    // Runs last, with the epoch fully accounted and closed, so a
    // SimulatedCrash thrown here leaves the machine in a consistent
    // (out-of-epoch) state for post-mortem stats.
    fault_hook_->OnEpochEnd(epoch_index);
  }
  return report;
}

void Machine::ChargeRegion(RegionId id, double ns) {
  if (id >= region_user_.size()) {
    region_user_.resize(id + 1, 0.0);
    region_accesses_.resize(id + 1, 0);
  }
  if (region_accesses_[id] == 0) epoch_regions_.push_back(id);
  region_user_[id] += ns;
  ++region_accesses_[id];
}

void Machine::EmitEpochTrace(uint64_t epoch_index, const EpochReport& report,
                             SimNs start_ns, uint32_t crit_index,
                             SimNs crit_user, SimNs crit_kernel,
                             double remote_factor) {
  // Only the guarded EndEpoch call site reaches here; making the
  // precondition explicit keeps every trace_-> dispatch null-checked.
  PMG_CHECK(trace_ != nullptr);
  EpochTrace et;
  et.epoch_index = epoch_index;
  et.active_threads = epoch_active_threads_;
  et.start_ns = start_ns;
  et.total_ns = report.total_ns;
  et.latency_path_ns = report.latency_path_ns;
  et.bandwidth_path_ns = report.bandwidth_path_ns;
  et.daemon_ns = report.daemon_ns;
  et.bandwidth_bound = report.bandwidth_bound;
  et.critical_thread = crit_index;

  // User buckets: cumulative rounding of the critical thread's fractional
  // buckets, so the integer buckets sum to the rounded bucket total; the
  // residual versus the thread's integer user clock (the two sum the same
  // terms in different orders, so they can differ by a few ulps) is folded
  // into the largest bucket. A genuinely unattributed cost site would
  // produce a residual far above ulp scale and trips the check instead.
  const ThreadState& crit = threads_[crit_index];
  double cum = 0.0;
  SimNs assigned = 0;
  size_t largest = 0;
  for (size_t b = 0; b < kFirstKernelBucket; ++b) {
    cum += crit.user_bucket[b];
    const SimNs floor = static_cast<SimNs>(cum);
    et.buckets[b] = floor - assigned;
    assigned = floor;
    if (crit.user_bucket[b] > crit.user_bucket[largest]) largest = b;
  }
  const int64_t residual =
      static_cast<int64_t>(crit_user) - static_cast<int64_t>(assigned);
  const int64_t tolerance =
      1024 + static_cast<int64_t>(crit_user >> 20);
  PMG_CHECK_MSG(residual <= tolerance && -residual <= tolerance,
                "unattributed user time: %lld ns escaped the trace buckets",
                static_cast<long long>(residual));
  int64_t debit = residual;
  for (size_t b = largest; debit != 0;) {
    const int64_t value = static_cast<int64_t>(et.buckets[b]) + debit;
    if (value >= 0) {
      et.buckets[b] = static_cast<SimNs>(value);
      debit = 0;
    } else {
      // The largest bucket cannot absorb the (negative) residual; drain
      // it and move on. Unreachable in practice (residual is ulp-scale)
      // but keeps the buckets non-negative no matter what.
      debit += static_cast<int64_t>(et.buckets[b]);
      et.buckets[b] = 0;
      b = (b + 1) % kFirstKernelBucket;
    }
  }
  if (report.bandwidth_bound) {
    et.buckets[static_cast<size_t>(TraceBucket::kRooflineStall)] +=
        report.bandwidth_path_ns - report.latency_path_ns;
  }

  // Kernel buckets are integral, so they must balance exactly.
  SimNs kernel_sum = 0;
  for (size_t b = kFirstKernelBucket; b < kTraceBucketCount; ++b) {
    et.buckets[b] = crit.kernel_bucket[b];
    kernel_sum += crit.kernel_bucket[b];
  }
  PMG_CHECK_MSG(kernel_sum == crit_kernel,
                "unattributed kernel time escaped the trace buckets");
  if (report.daemon_ns > 0) {
    et.buckets[static_cast<size_t>(TraceBucket::kMigrationScan)] +=
        last_daemon_.scan;
    et.buckets[static_cast<size_t>(TraceBucket::kMigrationMove)] +=
        last_daemon_.move;
    et.buckets[static_cast<size_t>(TraceBucket::kMigrationRemap)] +=
        last_daemon_.remap;
    et.buckets[static_cast<size_t>(TraceBucket::kTlbShootdown)] +=
        last_daemon_.shootdown;
    PMG_CHECK_MSG(last_daemon_.scan + last_daemon_.move + last_daemon_.remap +
                          last_daemon_.shootdown ==
                      report.daemon_ns,
                  "unattributed migration-daemon time");
    et.migrations = last_daemon_.migrated;
    // The raw (pre-pmm_kernel_factor) daemon inputs used to be dropped
    // unless full cost tracing was on; carry them on every traced epoch
    // so the run report can reconcile daemon cost (satellite: DaemonCost
    // _raw fields were in no report).
    et.daemon_scan_raw_ns = last_daemon_.scan_raw;
    et.daemon_shootdown_raw_ns = last_daemon_.shootdown_raw;
  }

  for (uint32_t i = 0; i < threads_.size(); ++i) {
    const ThreadState& ts = threads_[i];
    const SimNs user = static_cast<SimNs>(ts.user_ns);
    if (user == 0 && ts.kernel_ns == 0) continue;
    et.threads.push_back({static_cast<ThreadId>(i), user, ts.kernel_ns});
    if (trace_cost_) [[unlikely]] {
      EpochTrace::CostRecord::ThreadCost tc;
      tc.thread = static_cast<ThreadId>(i);
      for (size_t c = 0; c < kCostClassCount; ++c) {
        tc.counts[c] = ts.cost_count[c];
      }
      tc.compute_ns =
          ts.user_bucket[static_cast<size_t>(TraceBucket::kCompute)];
      tc.retry_ns =
          ts.user_bucket[static_cast<size_t>(TraceBucket::kRetryBackoff)];
      tc.user_exact_ns = ts.user_ns;
      et.cost.threads.push_back(tc);
    }
  }
  if (trace_cost_) [[unlikely]] {
    et.cost.valid = true;
    et.cost.remote_factor = remote_factor;
    if (report.daemon_ns > 0) {
      et.cost.daemon_scan_raw = last_daemon_.scan_raw;
      et.cost.daemon_shootdown_raw = last_daemon_.shootdown_raw;
      et.cost.daemon_move_ns = last_daemon_.move;
    }
    et.cost.channels.assign(channels_.begin(), channels_.end());
    et.cost.fills.assign(cost_fills_.begin(), cost_fills_.end());
  }

  std::sort(epoch_regions_.begin(), epoch_regions_.end());
  for (const RegionId id : epoch_regions_) {
    et.regions.push_back({id, region_accesses_[id],
                          static_cast<SimNs>(region_user_[id])});
    region_user_[id] = 0.0;
    region_accesses_[id] = 0;
  }
  epoch_regions_.clear();

  for (const ChannelBytes& ch : channels_) {
    EpochTrace::SocketTraffic sk;
    for (int a = 0; a < 2; ++a) {
      for (int s = 0; s < 2; ++s) {
        for (int w = 0; w < 2; ++w) {
          sk.dram_bytes += ch.dram[a][s][w];
          sk.pmm_bytes += ch.pmm[a][s][w];
        }
      }
    }
    et.sockets.push_back(sk);
  }

  stats_.trace_attributed_ns += et.BucketSum();
  ++stats_.traced_epochs;
  trace_->OnEpochTrace(et);
  if (et.migrations > 0) {
    trace_->OnInstant(TraceInstantKind::kMigration, crit_index,
                      start_ns + et.total_ns, et.migrations);
  }
}

SimNs Machine::RunMigrationDaemon() {
  const MigrationConfig& mc = config_.migration;
  ++scan_counter_;
  ++stats_.migration_scans;
  DaemonCost dc;
  const uint64_t mapped = pages_.mapped_pages();
  dc.scan_raw = mapped * mc.scan_per_page_ns;
  dc.scan = KernelCost(dc.scan_raw);

  // Decision audit of this scan, maintained only while a TierHook is
  // attached. Emitting it never changes a decision: `hot && rate &&
  // budget` below composes to exactly the historical candidate condition.
  TierScanRecord audit;

  uint32_t migrated = 0;
  uint64_t page_seq = 0;
  migrate_budget_bytes_ = std::min<uint64_t>(
      migrate_budget_bytes_ + mc.migrate_bytes_per_scan,
      8 * mc.migrate_bytes_per_scan);
  pages_.ForEachMappedPage([&](Region& /*r*/, PageInfo& p, VirtAddr base,
                               PageSizeClass cls) {
    // Arm AutoNUMA hint faults on a rotating subset of pages.
    if ((page_seq + scan_counter_) % mc.hint_every == 0) p.hint_armed = true;
    ++page_seq;

    const uint32_t threshold =
        cls == PageSizeClass::k4K
            ? mc.min_remote_accesses
            : mc.min_remote_accesses * mc.huge_page_threshold_factor;
    const bool hot = p.remote_accesses >= threshold &&
                     p.remote_accesses > p.local_accesses;
    const bool candidate = hot && migrated < mc.max_migrations_per_scan &&
                           PageBytes(cls) <= migrate_budget_bytes_;
    const NodeId target = p.last_remote_node % config_.topology.sockets;
    if (hot && tier_ != nullptr) [[unlikely]] {
      ++audit.candidates;
      tier_->OnTierCandidate(base, cls, p.node, target, p.remote_accesses,
                             p.local_accesses);
    }
    if (candidate) {
      const uint64_t n = PageBytes(cls) / kSmallPageBytes;
      const PhysPage nf = AllocFrames(target, n);
      if (nf != kInvalidFrame && NodeOfFrame(nf) == target) {
        const NodeId old_node = p.node;
        if (near_mem_ != nullptr) near_mem_->Invalidate(p.node, p.frame, n);
        FreeFrames(p.node, p.frame, n);
        // Copy + PTE remap.
        dc.move += static_cast<SimNs>(static_cast<double>(PageBytes(cls)) /
                                      mc.copy_bw_gbs);
        dc.remap += KernelCost(1000);
        p.frame = nf;
        p.node = target;
        migrate_budget_bytes_ -= PageBytes(cls);
        dc.migrated_bytes += PageBytes(cls);
        ++migrated;
        ++stats_.migrations;
        // Remap invalidates the translation on every core.
        for (ThreadState& ts : threads_) {
          if (ts.tlb != nullptr) ts.tlb->InvalidatePage(base, cls);
        }
        if (tier_ != nullptr) [[unlikely]] {
          tier_->OnTierMigrated(base, cls, old_node, target, PageBytes(cls));
        }
      } else if (nf != kInvalidFrame) {
        // Spilled to the wrong node: give the frames back, skip.
        FreeFrames(NodeOfFrame(nf), nf, n);
        if (tier_ != nullptr) [[unlikely]] {
          ++audit.skipped[static_cast<size_t>(TierSkipReason::kWrongNode)];
          tier_->OnTierSkipped(base, cls, p.node, TierSkipReason::kWrongNode);
        }
      } else if (tier_ != nullptr) [[unlikely]] {
        ++audit.skipped[static_cast<size_t>(TierSkipReason::kNoFrames)];
        tier_->OnTierSkipped(base, cls, p.node, TierSkipReason::kNoFrames);
      }
    } else if (hot && tier_ != nullptr) [[unlikely]] {
      // The canonical reason is the first failed test, in the candidate
      // condition's own order: rate limit, then byte budget.
      const TierSkipReason reason = migrated >= mc.max_migrations_per_scan
                                        ? TierSkipReason::kRateLimit
                                        : TierSkipReason::kByteBudget;
      ++audit.skipped[static_cast<size_t>(reason)];
      tier_->OnTierSkipped(base, cls, p.node, reason);
    }
    p.local_accesses = 0;
    p.remote_accesses = 0;
  });

  if (migrated > 0) {
    ++stats_.tlb_shootdowns;
    // One batched shootdown: the IPI wave interrupts all cores in
    // parallel, so the critical path grows by one handler, not by the
    // sum over cores.
    dc.shootdown_raw =
        mc.shootdown_base_ns + SimNs{migrated} * mc.shootdown_per_page_ns;
    dc.shootdown = KernelCost(dc.shootdown_raw);
  }
  dc.migrated = migrated;
  last_daemon_ = dc;
  if (tier_ != nullptr) [[unlikely]] {
    audit.scan_index = stats_.migration_scans;
    audit.at_ns = last_scan_ns_;
    audit.mapped_pages = mapped;
    audit.scan_ns = dc.scan;
    audit.move_ns = dc.move;
    audit.remap_ns = dc.remap;
    audit.shootdown_ns = dc.shootdown;
    audit.scan_raw_ns = dc.scan_raw;
    audit.shootdown_raw_ns = dc.shootdown_raw;
    audit.migrated_pages = migrated;
    audit.migrated_bytes = dc.migrated_bytes;
    tier_->OnTierScan(audit);
  }
  return dc.scan + dc.move + dc.remap + dc.shootdown;
}

void Machine::FlushVolatileState() {
  PMG_CHECK(!in_epoch_);
  for (ThreadState& ts : threads_) {
    if (ts.tlb != nullptr) ts.tlb->InvalidateAll();
    if (ts.cache != nullptr) ts.cache->Clear();
    ts.last_line = ~0ull;
  }
  if (near_mem_ != nullptr) {
    near_mem_ = std::make_unique<NearMemoryCache>(
        config_.topology.sockets,
        config_.topology.dram_bytes_per_socket / kSmallPageBytes,
        config_.near_mem_ways);
  }
}

}  // namespace pmg::memsim
