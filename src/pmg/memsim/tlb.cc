#include "pmg/memsim/tlb.h"

#include "pmg/common/check.h"

namespace pmg::memsim {

namespace {
constexpr VirtAddr kNoTag = ~0ull;
}  // namespace

void Tlb::Array::Init(uint32_t entries, uint32_t ways_in) {
  PMG_CHECK(entries > 0 && ways_in > 0 && entries % ways_in == 0);
  ways = ways_in;
  sets = entries / ways_in;
  tags.assign(entries, kNoTag);
  age.assign(entries, 0);
}

bool Tlb::Array::Lookup(VirtAddr key) {
  const uint32_t set = static_cast<uint32_t>(key) % sets;
  const uint32_t base = set * ways;
  for (uint32_t w = 0; w < ways; ++w) {
    if (tags[base + w] == key) {
      // Age-based LRU: the hit way becomes youngest.
      for (uint32_t v = 0; v < ways; ++v) {
        if (age[base + v] < age[base + w]) ++age[base + v];
      }
      age[base + w] = 0;
      return true;
    }
  }
  return false;
}

void Tlb::Array::Insert(VirtAddr key) {
  const uint32_t set = static_cast<uint32_t>(key) % sets;
  const uint32_t base = set * ways;
  uint32_t victim = 0;
  for (uint32_t w = 0; w < ways; ++w) {
    if (tags[base + w] == kNoTag) {
      victim = w;
      break;
    }
    if (age[base + w] > age[base + victim]) victim = w;
  }
  for (uint32_t v = 0; v < ways; ++v) ++age[base + v];
  tags[base + victim] = key;
  age[base + victim] = 0;
}

void Tlb::Array::Invalidate(VirtAddr key) {
  const uint32_t set = static_cast<uint32_t>(key) % sets;
  const uint32_t base = set * ways;
  for (uint32_t w = 0; w < ways; ++w) {
    if (tags[base + w] == key) tags[base + w] = kNoTag;
  }
}

void Tlb::Array::Clear() {
  tags.assign(tags.size(), kNoTag);
  age.assign(age.size(), 0);
}

Tlb::Tlb(const TlbConfig& config) {
  small_.Init(config.entries_4k, config.ways_4k);
  huge_.Init(config.entries_2m, config.ways_2m);
  giant_.Init(config.entries_1g, config.ways_1g);
}

Tlb::Array& Tlb::ArrayFor(PageSizeClass cls) {
  switch (cls) {
    case PageSizeClass::k4K:
      return small_;
    case PageSizeClass::k2M:
      return huge_;
    case PageSizeClass::k1G:
      return giant_;
  }
  return small_;
}

bool Tlb::Lookup(VirtAddr page_base, PageSizeClass cls) {
  // Index by page number so consecutive pages land in different sets.
  return ArrayFor(cls).Lookup(page_base / PageBytes(cls));
}

void Tlb::Insert(VirtAddr page_base, PageSizeClass cls) {
  ArrayFor(cls).Insert(page_base / PageBytes(cls));
}

void Tlb::InvalidatePage(VirtAddr page_base, PageSizeClass cls) {
  ArrayFor(cls).Invalidate(page_base / PageBytes(cls));
}

void Tlb::InvalidateAll() {
  small_.Clear();
  huge_.Clear();
  giant_.Clear();
}

}  // namespace pmg::memsim
