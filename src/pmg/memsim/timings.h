#ifndef PMG_MEMSIM_TIMINGS_H_
#define PMG_MEMSIM_TIMINGS_H_

#include "pmg/common/types.h"

/// \file timings.h
/// Latency and bandwidth constants of the simulated memory system.
///
/// The default values are taken directly from the paper:
///   - Table 1: bandwidth (GB/s) of Intel Optane PMM by mode (memory /
///     app-direct), pattern (random / sequential), locality and direction.
///   - Table 2: idle latency (ns) by mode and locality.
/// DRAM-baseline values (the paper's machine with PMM in app-direct mode and
/// DRAM as main memory) use typical Cascade Lake figures.

namespace pmg::memsim {

/// Bandwidth of one class of traffic on one socket's memory channel set,
/// in gigabytes per second.
struct ChannelBandwidth {
  double seq_read_gbs;
  double seq_write_gbs;
  double rand_read_gbs;
  double rand_write_gbs;
};

/// All timing constants of a machine. Latencies are per cache-line access
/// (the cost the paper's Table 2 measures with dependent loads); bandwidths
/// bound aggregate throughput via the epoch roofline in Machine.
struct MemoryTimings {
  // --- Latency (ns), Table 2 plus DRAM baseline. ---
  /// DRAM access on a DRAM-main-memory machine.
  SimNs dram_local_ns = 81;
  SimNs dram_remote_ns = 138;
  /// Memory mode: access that hits in near-memory (DRAM cache).
  SimNs near_mem_hit_local_ns = 95;
  SimNs near_mem_hit_remote_ns = 150;
  /// Extra latency added on a near-memory miss (PMM media read on the
  /// critical path). 95 + 210 = ~305ns observed media latency.
  SimNs near_mem_miss_extra_ns = 210;
  /// App-direct mode: direct load/store against PMM media.
  SimNs appdirect_local_ns = 164;
  SimNs appdirect_remote_ns = 232;

  // --- Bandwidth (GB/s), Table 1. ---
  /// DRAM channels. In memory mode nearly all hit traffic is DRAM traffic,
  /// so these are exactly the paper's "Memory" rows; the same silicon serves
  /// the DRAM-only configuration.
  ChannelBandwidth dram_local{106.0, 54.0, 90.0, 50.0};
  ChannelBandwidth dram_remote{100.0, 29.5, 34.0, 29.5};
  /// PMM media channels ("App-direct" rows). In memory mode these price
  /// near-memory fills and writebacks; in app-direct mode, storage I/O.
  ChannelBandwidth pmm_local{31.0, 10.5, 8.2, 3.6};
  ChannelBandwidth pmm_remote{21.0, 7.5, 5.5, 2.3};

  // --- CPU-side costs. ---
  /// Cost of a hit in the simulated per-thread line cache (models L1/L2).
  SimNs cpu_cache_hit_ns = 1;
  /// Memory-level parallelism: out-of-order cores keep several misses in
  /// flight, so a thread's effective per-miss cost is latency / this
  /// factor. Set to 1 to model a fully dependent pointer chase (the
  /// Table 2 measurement).
  double mem_parallelism = 4.0;
  /// Cost of one level of a hardware page walk. The walk touches in-memory
  /// page-table structures; on the PMM machine those reside behind the
  /// near-memory cache, so each level costs roughly a near-memory access
  /// (Section 4.3: TLB misses raise near-memory access latency because
  /// translation is on the critical path of the physically-indexed cache).
  SimNs walk_step_dram_ns = 20;
  SimNs walk_step_pmm_ns = 60;

  // --- Kernel operation costs (Section 4.2: kernel time is higher on PMM
  // because kernel data structures live in slower memory). ---
  /// Minor page fault (allocate + zero + map) for a 4KB page.
  SimNs fault_small_dram_ns = 1200;
  /// Minor fault for a 2MB page (one fault maps 512x the memory).
  SimNs fault_huge_dram_ns = 2600;
  /// Multiplier applied to kernel costs when main memory is PMM.
  double pmm_kernel_factor = 1.8;
  /// Machine-check handler for an uncorrectable media error: poison
  /// consumption traps to the kernel, which signals, unmaps and remaps the
  /// page (hwpoison soft-offline path, ~hundreds of microseconds).
  SimNs machine_check_ns = 500000;

  /// Per-message interconnect latency for distributed simulation (used by
  /// pmg::distsim, kept here so all timing constants live in one place).
  SimNs network_round_latency_ns = 30000;
  double network_bw_gbs = 12.5;  // 100 Gb/s Omni-Path
};

/// Returns the defaults above (paper Tables 1 and 2).
MemoryTimings DefaultTimings();

}  // namespace pmg::memsim

#endif  // PMG_MEMSIM_TIMINGS_H_
