#ifndef PMG_MEMSIM_ACCESS_OBSERVER_H_
#define PMG_MEMSIM_ACCESS_OBSERVER_H_

#include <cstdint>
#include <string_view>

#include "pmg/common/types.h"
#include "pmg/memsim/page_table.h"

/// \file access_observer.h
/// The dynamic-analysis seam of the machine model. An AccessObserver
/// attached via Machine::AddObserver() sees every allocation, free, costed
/// access and epoch boundary *before* the access is priced — the same
/// interposition point a compiler-inserted sanitizer runtime owns on real
/// hardware. The machine itself knows nothing about what observers do;
/// `pmg::sancheck` implements the race detector and shadow bounds checker
/// on top of this interface.
///
/// The hot path pays one predictable null-pointer branch when no observer
/// is attached, so Release-mode costing keeps its profile (verified by
/// bench_micro_memsim).

namespace pmg::memsim {

class AccessObserver {
 public:
  virtual ~AccessObserver() = default;

  /// A region was mapped at [base, base + bytes).
  virtual void OnAlloc(RegionId id, VirtAddr base, uint64_t bytes,
                       std::string_view name) = 0;

  /// The region was unmapped; its address range is dead from here on.
  virtual void OnFree(RegionId id) = 0;

  /// One costed access, before pricing. Unlike Machine::Access — which
  /// prices whole cache lines — range accesses report the precise byte
  /// extent touched within each line, so observers can check bounds and
  /// overlap exactly.
  virtual void OnAccess(ThreadId t, VirtAddr addr, uint32_t bytes,
                        AccessType type) = 0;

  /// A parallel region started on threads [0, active_threads).
  virtual void OnEpochBegin(uint32_t active_threads) = 0;

  /// The region ended. Returns the number of race violations detected in
  /// the epoch; the machine folds the count into MachineStats.
  virtual uint64_t OnEpochEnd() = 0;
};

}  // namespace pmg::memsim

#endif  // PMG_MEMSIM_ACCESS_OBSERVER_H_
