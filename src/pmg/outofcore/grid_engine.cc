#include "pmg/outofcore/grid_engine.h"

#include <algorithm>

#include "pmg/analytics/common.h"
#include "pmg/common/check.h"

namespace pmg::outofcore {

namespace {

/// Vertex-data placement: interleaved DRAM (GridGraph leaves this to the
/// OS; the paper runs it under numactl interleaved).
memsim::PagePolicy VertexDataPolicy() {
  memsim::PagePolicy p;
  p.placement = memsim::Placement::kInterleaved;
  p.page_size = memsim::PageSizeClass::k4K;
  p.thp = true;
  return p;
}

/// Per-edge streaming compute cost (decode + apply), nanoseconds.
constexpr SimNs kEdgeComputeNs = 2;

}  // namespace

GridEngine::GridEngine(memsim::Machine* machine,
                       const graph::CsrTopology& topo,
                       const GridConfig& config)
    : machine_(machine),
      config_(config),
      num_vertices_(topo.num_vertices),
      num_edges_(topo.NumEdges()) {
  PMG_CHECK(machine != nullptr);
  PMG_CHECK_MSG(machine->config().kind == memsim::MachineKind::kAppDirect,
                "GridEngine streams from PMM in app-direct mode");
  PMG_CHECK_MSG(topo.num_vertices <= 0x7fffffffull,
                "GridGraph uses signed 32-bit node ids");
  const uint32_t p = config_.grid_p;
  PMG_CHECK(p >= 1);
  part_size_ = (num_vertices_ + p - 1) / p;
  grid_.resize(p);
  for (auto& row : grid_) row.resize(p);
  for (VertexId v = 0; v < topo.num_vertices; ++v) {
    for (uint64_t e = topo.index[v]; e < topo.index[v + 1]; ++e) {
      const VertexId d = topo.dst[e];
      grid_[PartOf(v)][PartOf(d)].edges.emplace_back(
          static_cast<uint32_t>(v), static_cast<uint32_t>(d));
    }
  }
}

template <typename EdgeFn>
uint64_t GridEngine::StreamPass(const std::vector<uint8_t>& active_part,
                                EdgeFn&& edge_fn) {
  uint64_t blocks_loaded = 0;
  ThreadId t = 0;
  for (uint32_t i = 0; i < config_.grid_p; ++i) {
    if (active_part[i] == 0) continue;
    for (uint32_t j = 0; j < config_.grid_p; ++j) {
      const Block& blk = grid_[i][j];
      if (blk.edges.empty()) continue;
      ++blocks_loaded;
      // One block = one sequential storage read of 8 bytes per edge.
      machine_->StorageRead(t, blk.edges.size() * 8, i % 2,
                            /*sequential=*/true);
      for (const auto& [s, d] : blk.edges) {
        machine_->AddCompute(t, kEdgeComputeNs);
        edge_fn(t, VertexId{s}, VertexId{d});
      }
      t = (t + 1) % config_.threads;
    }
  }
  return blocks_loaded;
}

OocResult GridEngine::Bfs(VertexId source, std::vector<uint32_t>* levels_out) {
  OocResult out;
  runtime::Runtime rt(machine_, config_.threads);
  out.time_ns = rt.Timed([&] {
    runtime::NumaArray<uint32_t> level(machine_, num_vertices_,
                                       VertexDataPolicy(), "ooc.bfs.level");
    rt.ParallelFor(0, num_vertices_, [&](ThreadId t, uint64_t v) {
      level.Set(t, v, analytics::kInfLevel);
    });
    level.Set(0, source, 0);
    std::vector<uint8_t> active_part(config_.grid_p, 0);
    active_part[PartOf(source)] = 1;
    uint32_t round = 0;
    bool any_active = true;
    while (any_active) {
      std::vector<uint8_t> next_part(config_.grid_p, 0);
      any_active = false;
      machine_->CloseEpochIfOpen();
      machine_->BeginEpoch(config_.threads);
      StreamPass(active_part, [&](ThreadId t, VertexId s, VertexId d) {
        if (level.Get(t, s) == round &&
            level.Get(t, d) == analytics::kInfLevel) {
          level.Set(t, d, round + 1);
          next_part[PartOf(d)] = 1;
          any_active = true;
        }
      });
      machine_->EndEpoch();
      active_part.swap(next_part);
      ++round;
    }
    out.rounds = round;
    if (levels_out != nullptr) {
      levels_out->assign(level.raw(), level.raw() + num_vertices_);
    }
  });
  out.storage_read_bytes = machine_->stats().storage_read_bytes;
  out.supported = true;
  return out;
}

OocResult GridEngine::Cc(std::vector<uint64_t>* labels_out) {
  OocResult out;
  runtime::Runtime rt(machine_, config_.threads);
  out.time_ns = rt.Timed([&] {
    runtime::NumaArray<uint64_t> label(machine_, num_vertices_,
                                       VertexDataPolicy(), "ooc.cc.label");
    rt.ParallelFor(0, num_vertices_, [&](ThreadId t, uint64_t v) {
      label.Set(t, v, v);
    });
    std::vector<uint8_t> active_part(config_.grid_p, 1);
    uint64_t round = 0;
    bool changed = true;
    while (changed) {
      std::vector<uint8_t> next_part(config_.grid_p, 0);
      changed = false;
      machine_->CloseEpochIfOpen();
      machine_->BeginEpoch(config_.threads);
      StreamPass(active_part, [&](ThreadId t, VertexId s, VertexId d) {
        const uint64_t ls = label.Get(t, s);
        if (label.CasMin(t, d, ls)) {
          next_part[PartOf(d)] = 1;
          changed = true;
        }
      });
      machine_->EndEpoch();
      active_part.swap(next_part);
      ++round;
    }
    out.rounds = round;
    if (labels_out != nullptr) {
      labels_out->assign(label.raw(), label.raw() + num_vertices_);
    }
  });
  out.storage_read_bytes = machine_->stats().storage_read_bytes;
  out.supported = true;
  return out;
}

OocResult GridEngine::PageRank(uint32_t rounds, std::vector<double>* ranks_out) {
  OocResult out;
  runtime::Runtime rt(machine_, config_.threads);
  out.time_ns = rt.Timed([&] {
    constexpr double kDamping = 0.85;
    const double base = 1.0 - kDamping;
    runtime::NumaArray<double> rank(machine_, num_vertices_,
                                    VertexDataPolicy(), "ooc.pr.rank");
    runtime::NumaArray<double> next(machine_, num_vertices_,
                                    VertexDataPolicy(), "ooc.pr.next");
    runtime::NumaArray<uint32_t> deg(machine_, num_vertices_,
                                     VertexDataPolicy(), "ooc.pr.deg");
    rt.ParallelFor(0, num_vertices_, [&](ThreadId t, uint64_t v) {
      rank.Set(t, v, base);
      next.Set(t, v, base);
      deg.Set(t, v, 0);
    });
    // Degree pass (streamed once).
    std::vector<uint8_t> all(config_.grid_p, 1);
    machine_->CloseEpochIfOpen();
    machine_->BeginEpoch(config_.threads);
    StreamPass(all, [&](ThreadId t, VertexId s, VertexId) {
      deg.Update(t, s, [](uint32_t& x) { ++x; });
    });
    machine_->EndEpoch();
    for (uint32_t r = 0; r < rounds; ++r) {
      rt.ParallelFor(0, num_vertices_, [&](ThreadId t, uint64_t v) {
        next.Set(t, v, base);
      });
      machine_->CloseEpochIfOpen();
      machine_->BeginEpoch(config_.threads);
      StreamPass(all, [&](ThreadId t, VertexId s, VertexId d) {
        const uint32_t ds = deg.Get(t, s);
        if (ds == 0) return;
        const double share = kDamping * rank.Get(t, s) / ds;
        next.Update(t, d, [&](double& x) { x += share; });
      });
      machine_->EndEpoch();
      std::swap(rank, next);
    }
    out.rounds = rounds;
    if (ranks_out != nullptr) {
      ranks_out->assign(rank.raw(), rank.raw() + num_vertices_);
    }
  });
  out.storage_read_bytes = machine_->stats().storage_read_bytes;
  out.supported = true;
  return out;
}

}  // namespace pmg::outofcore
