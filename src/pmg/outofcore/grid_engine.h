#ifndef PMG_OUTOFCORE_GRID_ENGINE_H_
#define PMG_OUTOFCORE_GRID_ENGINE_H_

#include <cstdint>
#include <vector>

#include "pmg/common/types.h"
#include "pmg/graph/topology.h"
#include "pmg/memsim/machine.h"
#include "pmg/runtime/numa_array.h"
#include "pmg/runtime/runtime.h"

/// \file grid_engine.h
/// A GridGraph-like out-of-core engine (Section 6.4 / Table 5): edges are
/// preprocessed into a P x P grid of blocks by (source partition,
/// destination partition) and stored on Optane PMM in app-direct mode;
/// vertex data lives in DRAM. Each iteration streams the blocks whose
/// source partition contains any active vertex — block-granularity
/// selective scheduling, so one active vertex drags in its whole row of
/// edge blocks. Only vertex programs are expressible; there are no sparse
/// worklists and no asynchronous execution, which is precisely why the
/// paper measures it orders of magnitude behind memory-mode Galois.
/// Like GridGraph, node ids are signed 32-bit: graphs standing in for
/// > 2^31 - 1 vertices are rejected by the caller.

namespace pmg::outofcore {

struct GridConfig {
  /// Grid dimension P (the paper used 512 x 512 at full scale; scaled
  /// runs default to 64).
  uint32_t grid_p = 64;
  uint32_t threads = 96;
};

struct OocResult {
  bool supported = false;
  SimNs time_ns = 0;
  uint64_t rounds = 0;
  uint64_t storage_read_bytes = 0;
};

/// The engine: preprocesses on construction (preprocessing, like the
/// paper's, is excluded from reported runtimes), then runs vertex
/// programs by streaming the grid.
class GridEngine {
 public:
  /// `machine` must be configured as MachineKind::kAppDirect.
  GridEngine(memsim::Machine* machine, const graph::CsrTopology& topo,
             const GridConfig& config);

  uint64_t num_vertices() const { return num_vertices_; }
  uint64_t num_edges() const { return num_edges_; }

  /// Streaming BFS from `source`: returns levels via `levels_out`
  /// (host-side copy for verification).
  OocResult Bfs(VertexId source, std::vector<uint32_t>* levels_out);

  /// Streaming connected components by label propagation (expects a
  /// symmetrized graph). Labels converge to component minima.
  OocResult Cc(std::vector<uint64_t>* labels_out);

  /// Streaming PageRank (fixed rounds, GridGraph-style).
  OocResult PageRank(uint32_t rounds, std::vector<double>* ranks_out);

 private:
  struct Block {
    std::vector<std::pair<uint32_t, uint32_t>> edges;  // (src, dst)
  };

  uint32_t PartOf(VertexId v) const {
    return static_cast<uint32_t>(v / part_size_);
  }

  /// Streams one pass: for every block whose source partition is active
  /// (per `active`), charges storage I/O and applies `edge_fn(t, s, d)`.
  /// Returns blocks loaded.
  template <typename EdgeFn>
  uint64_t StreamPass(const std::vector<uint8_t>& active_part,
                      EdgeFn&& edge_fn);

  memsim::Machine* machine_;
  GridConfig config_;
  uint64_t num_vertices_ = 0;
  uint64_t num_edges_ = 0;
  uint64_t part_size_ = 1;
  std::vector<std::vector<Block>> grid_;  // [src_part][dst_part]
};

}  // namespace pmg::outofcore

#endif  // PMG_OUTOFCORE_GRID_ENGINE_H_
