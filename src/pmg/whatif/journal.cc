#include "pmg/whatif/journal.h"

#include <cstdio>
#include <string>

#include "pmg/common/check.h"
#include "pmg/trace/json.h"

namespace pmg::whatif {

namespace {

const char* KindName(memsim::MachineKind kind) {
  switch (kind) {
    case memsim::MachineKind::kDramMain:
      return "dram";
    case memsim::MachineKind::kMemoryMode:
      return "memory";
    case memsim::MachineKind::kAppDirect:
      return "appdirect";
  }
  return "?";
}

bool KindFromName(const std::string& name, memsim::MachineKind* out) {
  if (name == "dram") {
    *out = memsim::MachineKind::kDramMain;
  } else if (name == "memory") {
    *out = memsim::MachineKind::kMemoryMode;
  } else if (name == "appdirect") {
    *out = memsim::MachineKind::kAppDirect;
  } else {
    return false;
  }
  return true;
}

bool TimingsEqual(const memsim::MemoryTimings& a,
                  const memsim::MemoryTimings& b) {
  auto bw_eq = [](const memsim::ChannelBandwidth& x,
                  const memsim::ChannelBandwidth& y) {
    return x.seq_read_gbs == y.seq_read_gbs &&
           x.seq_write_gbs == y.seq_write_gbs &&
           x.rand_read_gbs == y.rand_read_gbs &&
           x.rand_write_gbs == y.rand_write_gbs;
  };
  return a.dram_local_ns == b.dram_local_ns &&
         a.dram_remote_ns == b.dram_remote_ns &&
         a.near_mem_hit_local_ns == b.near_mem_hit_local_ns &&
         a.near_mem_hit_remote_ns == b.near_mem_hit_remote_ns &&
         a.near_mem_miss_extra_ns == b.near_mem_miss_extra_ns &&
         a.appdirect_local_ns == b.appdirect_local_ns &&
         a.appdirect_remote_ns == b.appdirect_remote_ns &&
         bw_eq(a.dram_local, b.dram_local) &&
         bw_eq(a.dram_remote, b.dram_remote) &&
         bw_eq(a.pmm_local, b.pmm_local) && bw_eq(a.pmm_remote, b.pmm_remote) &&
         a.cpu_cache_hit_ns == b.cpu_cache_hit_ns &&
         a.mem_parallelism == b.mem_parallelism &&
         a.walk_step_dram_ns == b.walk_step_dram_ns &&
         a.walk_step_pmm_ns == b.walk_step_pmm_ns &&
         a.fault_small_dram_ns == b.fault_small_dram_ns &&
         a.fault_huge_dram_ns == b.fault_huge_dram_ns &&
         a.pmm_kernel_factor == b.pmm_kernel_factor &&
         a.machine_check_ns == b.machine_check_ns;
}

void WriteBandwidth(trace::JsonWriter* w, const char* key,
                    const memsim::ChannelBandwidth& bw) {
  w->Key(key).BeginArray();
  w->Double(bw.seq_read_gbs).Double(bw.seq_write_gbs);
  w->Double(bw.rand_read_gbs).Double(bw.rand_write_gbs);
  w->EndArray();
}

void WriteTimings(trace::JsonWriter* w, const memsim::MemoryTimings& tm) {
  w->Key("timings").BeginObject();
  w->Key("dram_local_ns").UInt(tm.dram_local_ns);
  w->Key("dram_remote_ns").UInt(tm.dram_remote_ns);
  w->Key("near_mem_hit_local_ns").UInt(tm.near_mem_hit_local_ns);
  w->Key("near_mem_hit_remote_ns").UInt(tm.near_mem_hit_remote_ns);
  w->Key("near_mem_miss_extra_ns").UInt(tm.near_mem_miss_extra_ns);
  w->Key("appdirect_local_ns").UInt(tm.appdirect_local_ns);
  w->Key("appdirect_remote_ns").UInt(tm.appdirect_remote_ns);
  WriteBandwidth(w, "dram_local", tm.dram_local);
  WriteBandwidth(w, "dram_remote", tm.dram_remote);
  WriteBandwidth(w, "pmm_local", tm.pmm_local);
  WriteBandwidth(w, "pmm_remote", tm.pmm_remote);
  w->Key("cpu_cache_hit_ns").UInt(tm.cpu_cache_hit_ns);
  w->Key("mem_parallelism").Double(tm.mem_parallelism);
  w->Key("walk_step_dram_ns").UInt(tm.walk_step_dram_ns);
  w->Key("walk_step_pmm_ns").UInt(tm.walk_step_pmm_ns);
  w->Key("fault_small_dram_ns").UInt(tm.fault_small_dram_ns);
  w->Key("fault_huge_dram_ns").UInt(tm.fault_huge_dram_ns);
  w->Key("pmm_kernel_factor").Double(tm.pmm_kernel_factor);
  w->Key("machine_check_ns").UInt(tm.machine_check_ns);
  w->EndObject();
}

/// Flattened channel-counter order: dram then pmm, each
/// [local/remote][seq/rand][read/write] row-major — 16 numbers.
void WriteChannels(trace::JsonWriter* w,
                   const memsim::ChannelByteCounts& ch) {
  w->BeginArray();
  for (int a = 0; a < 2; ++a) {
    for (int s = 0; s < 2; ++s) {
      for (int d = 0; d < 2; ++d) w->UInt(ch.dram[a][s][d]);
    }
  }
  for (int a = 0; a < 2; ++a) {
    for (int s = 0; s < 2; ++s) {
      for (int d = 0; d < 2; ++d) w->UInt(ch.pmm[a][s][d]);
    }
  }
  w->EndArray();
}

// --- Parse helpers: every failure surfaces as a one-line error, never a
// PMG_CHECK abort (truncated/corrupt journals are expected user input).

bool GetUInt(const trace::JsonValue& obj, const char* key, uint64_t* out,
             std::string* error) {
  const trace::JsonValue* v = obj.Find(key);
  if (v == nullptr || !v->IsNumber()) {
    *error = std::string("missing numeric field '") + key + "'";
    return false;
  }
  *out = v->AsUInt();
  return true;
}

bool GetDouble(const trace::JsonValue& obj, const char* key, double* out,
               std::string* error) {
  const trace::JsonValue* v = obj.Find(key);
  if (v == nullptr || !v->IsNumber()) {
    *error = std::string("missing numeric field '") + key + "'";
    return false;
  }
  *out = v->number;
  return true;
}

bool GetBandwidth(const trace::JsonValue& obj, const char* key,
                  memsim::ChannelBandwidth* out, std::string* error) {
  const trace::JsonValue* v = obj.Find(key);
  if (v == nullptr || v->kind != trace::JsonValue::Kind::kArray ||
      v->array.size() != 4) {
    *error = std::string("missing bandwidth row '") + key + "'";
    return false;
  }
  for (const trace::JsonValue& n : v->array) {
    if (!n.IsNumber()) {
      *error = std::string("non-numeric bandwidth in '") + key + "'";
      return false;
    }
  }
  out->seq_read_gbs = v->array[0].number;
  out->seq_write_gbs = v->array[1].number;
  out->rand_read_gbs = v->array[2].number;
  out->rand_write_gbs = v->array[3].number;
  return true;
}

bool ParseTimings(const trace::JsonValue& doc, memsim::MemoryTimings* tm,
                  std::string* error) {
  const trace::JsonValue* t = doc.Find("timings");
  if (t == nullptr || t->kind != trace::JsonValue::Kind::kObject) {
    *error = "missing 'timings' object";
    return false;
  }
  uint64_t u = 0;
  auto get_ns = [&](const char* key, SimNs* out) {
    if (!GetUInt(*t, key, &u, error)) return false;
    *out = u;
    return true;
  };
  return get_ns("dram_local_ns", &tm->dram_local_ns) &&
         get_ns("dram_remote_ns", &tm->dram_remote_ns) &&
         get_ns("near_mem_hit_local_ns", &tm->near_mem_hit_local_ns) &&
         get_ns("near_mem_hit_remote_ns", &tm->near_mem_hit_remote_ns) &&
         get_ns("near_mem_miss_extra_ns", &tm->near_mem_miss_extra_ns) &&
         get_ns("appdirect_local_ns", &tm->appdirect_local_ns) &&
         get_ns("appdirect_remote_ns", &tm->appdirect_remote_ns) &&
         GetBandwidth(*t, "dram_local", &tm->dram_local, error) &&
         GetBandwidth(*t, "dram_remote", &tm->dram_remote, error) &&
         GetBandwidth(*t, "pmm_local", &tm->pmm_local, error) &&
         GetBandwidth(*t, "pmm_remote", &tm->pmm_remote, error) &&
         get_ns("cpu_cache_hit_ns", &tm->cpu_cache_hit_ns) &&
         GetDouble(*t, "mem_parallelism", &tm->mem_parallelism, error) &&
         get_ns("walk_step_dram_ns", &tm->walk_step_dram_ns) &&
         get_ns("walk_step_pmm_ns", &tm->walk_step_pmm_ns) &&
         get_ns("fault_small_dram_ns", &tm->fault_small_dram_ns) &&
         get_ns("fault_huge_dram_ns", &tm->fault_huge_dram_ns) &&
         GetDouble(*t, "pmm_kernel_factor", &tm->pmm_kernel_factor, error) &&
         get_ns("machine_check_ns", &tm->machine_check_ns);
}

bool ParseChannels(const trace::JsonValue& v, memsim::ChannelByteCounts* ch,
                   std::string* error) {
  if (v.kind != trace::JsonValue::Kind::kArray || v.array.size() != 16) {
    *error = "channel counter row must have 16 entries";
    return false;
  }
  for (const trace::JsonValue& n : v.array) {
    if (!n.IsNumber()) {
      *error = "non-numeric channel counter";
      return false;
    }
  }
  size_t i = 0;
  for (int a = 0; a < 2; ++a) {
    for (int s = 0; s < 2; ++s) {
      for (int d = 0; d < 2; ++d) ch->dram[a][s][d] = v.array[i++].AsUInt();
    }
  }
  for (int a = 0; a < 2; ++a) {
    for (int s = 0; s < 2; ++s) {
      for (int d = 0; d < 2; ++d) ch->pmm[a][s][d] = v.array[i++].AsUInt();
    }
  }
  return true;
}

bool ParseEpoch(const trace::JsonValue& e, EpochCost* out,
                std::string* error) {
  if (e.kind != trace::JsonValue::Kind::kObject) {
    *error = "epoch entry is not an object";
    return false;
  }
  uint64_t u = 0;
  if (!GetUInt(e, "i", &out->epoch_index, error)) return false;
  if (!GetUInt(e, "act", &u, error)) return false;
  out->active_threads = static_cast<uint32_t>(u);
  if (!GetUInt(e, "at", &out->start_ns, error)) return false;
  if (!GetUInt(e, "tot", &out->total_ns, error)) return false;
  if (!GetUInt(e, "lat", &out->latency_path_ns, error)) return false;
  if (!GetUInt(e, "bw", &out->bandwidth_path_ns, error)) return false;
  if (!GetUInt(e, "dm", &out->daemon_ns, error)) return false;
  const trace::JsonValue* bb = e.Find("bb");
  if (bb == nullptr || bb->kind != trace::JsonValue::Kind::kBool) {
    *error = "missing bool field 'bb'";
    return false;
  }
  out->bandwidth_bound = bb->bool_value;
  if (!GetUInt(e, "crit", &u, error)) return false;
  out->critical_thread = static_cast<ThreadId>(u);
  if (!GetDouble(e, "rf", &out->remote_factor, error)) return false;
  if (!GetUInt(e, "dscan", &out->daemon_scan_raw, error)) return false;
  if (!GetUInt(e, "dshoot", &out->daemon_shootdown_raw, error)) return false;
  if (!GetUInt(e, "dmove", &out->daemon_move_ns, error)) return false;
  if (!GetUInt(e, "mig", &out->migrations, error)) return false;

  const trace::JsonValue* threads = e.Find("threads");
  if (threads == nullptr || threads->kind != trace::JsonValue::Kind::kArray) {
    *error = "missing 'threads' array";
    return false;
  }
  for (const trace::JsonValue& t : threads->array) {
    // [thread, user, kernel, user_exact, compute, retry, [counts x16]]
    if (t.kind != trace::JsonValue::Kind::kArray ||
        t.array.size() != 7 ||
        t.array[6].kind != trace::JsonValue::Kind::kArray ||
        t.array[6].array.size() != memsim::kCostClassCount) {
      *error = "malformed thread cost row";
      return false;
    }
    for (size_t k = 0; k < 6; ++k) {
      if (!t.array[k].IsNumber()) {
        *error = "non-numeric thread cost field";
        return false;
      }
    }
    EpochCost::ThreadCost tc;
    tc.thread = static_cast<ThreadId>(t.array[0].AsUInt());
    tc.user_ns = t.array[1].AsUInt();
    tc.kernel_ns = t.array[2].AsUInt();
    tc.user_exact_ns = t.array[3].number;
    tc.compute_ns = t.array[4].number;
    tc.retry_ns = t.array[5].number;
    for (size_t c = 0; c < memsim::kCostClassCount; ++c) {
      const trace::JsonValue& n = t.array[6].array[c];
      if (!n.IsNumber()) {
        *error = "non-numeric event count";
        return false;
      }
      tc.counts[c] = n.AsUInt();
    }
    out->threads.push_back(tc);
  }

  const trace::JsonValue* channels = e.Find("channels");
  if (channels == nullptr ||
      channels->kind != trace::JsonValue::Kind::kArray) {
    *error = "missing 'channels' array";
    return false;
  }
  for (const trace::JsonValue& c : channels->array) {
    memsim::ChannelByteCounts ch;
    if (!ParseChannels(c, &ch, error)) return false;
    out->channels.push_back(ch);
  }

  const trace::JsonValue* fills = e.Find("fills");
  if (fills == nullptr || fills->kind != trace::JsonValue::Kind::kArray) {
    *error = "missing 'fills' array";
    return false;
  }
  for (const trace::JsonValue& f : fills->array) {
    if (f.kind != trace::JsonValue::Kind::kArray || f.array.size() != 2 ||
        !f.array[0].IsNumber() || !f.array[1].IsNumber()) {
      *error = "malformed fill row";
      return false;
    }
    out->fills.push_back({f.array[0].AsUInt(), f.array[1].AsUInt()});
  }
  if (out->fills.size() != out->channels.size()) {
    *error = "fills/channels socket count mismatch";
    return false;
  }
  return true;
}

}  // namespace

void JournalRecorder::Attach(memsim::Machine* machine) {
  PMG_CHECK(machine != nullptr);
  PMG_CHECK_MSG(machine_ == nullptr,
                "JournalRecorder is already attached to a machine");
  const memsim::MachineConfig& cfg = machine->config();
  if (!header_set_) {
    journal_.machine_name = cfg.name;
    journal_.kind = cfg.kind;
    journal_.sockets = cfg.topology.sockets;
    journal_.migration_enabled = cfg.migration.enabled;
    journal_.timings = cfg.timings;
    header_set_ = true;
  } else {
    // Re-attachment (crash recovery): the replacement machine must price
    // the same way or the journal would mix incompatible cost models.
    PMG_CHECK_MSG(cfg.kind == journal_.kind &&
                      cfg.topology.sockets == journal_.sockets &&
                      TimingsEqual(cfg.timings, journal_.timings),
                  "re-attaching the cost journal to an incompatible machine");
  }
  machine_ = machine;
  downstream_ = machine->trace_sink();
  stats_base_total_ = machine->stats().total_ns;
  machine->SetTraceSink(this);
}

void JournalRecorder::Detach() {
  PMG_CHECK_MSG(machine_ != nullptr, "JournalRecorder is not attached");
  const SimNs delta = machine_->stats().total_ns - stats_base_total_;
  captured_total_ += delta;
  // Every epoch of the attached window must have been journaled: the sum
  // of recorded epoch totals is exactly the machine-clock delta.
  PMG_CHECK_MSG(journal_.total_ns == captured_total_,
                "cost journal lost epochs: recorded %llu ns of %llu ns",
                static_cast<unsigned long long>(journal_.total_ns),
                static_cast<unsigned long long>(captured_total_));
  machine_->SetTraceSink(downstream_);
  machine_ = nullptr;
  downstream_ = nullptr;
}

void JournalRecorder::OnEpochTrace(const memsim::EpochTrace& epoch) {
  PMG_CHECK_MSG(epoch.cost.valid,
                "machine delivered an epoch without its cost record");
  EpochCost ec;
  ec.epoch_index = epoch.epoch_index;
  ec.active_threads = epoch.active_threads;
  ec.start_ns = epoch.start_ns;
  ec.total_ns = epoch.total_ns;
  ec.latency_path_ns = epoch.latency_path_ns;
  ec.bandwidth_path_ns = epoch.bandwidth_path_ns;
  ec.daemon_ns = epoch.daemon_ns;
  ec.bandwidth_bound = epoch.bandwidth_bound;
  ec.critical_thread = epoch.critical_thread;
  ec.remote_factor = epoch.cost.remote_factor;
  ec.daemon_scan_raw = epoch.cost.daemon_scan_raw;
  ec.daemon_shootdown_raw = epoch.cost.daemon_shootdown_raw;
  ec.daemon_move_ns = epoch.cost.daemon_move_ns;
  ec.migrations = epoch.migrations;
  PMG_CHECK(epoch.cost.threads.size() == epoch.threads.size());
  for (size_t i = 0; i < epoch.threads.size(); ++i) {
    const memsim::EpochTrace::ThreadSlice& slice = epoch.threads[i];
    const memsim::EpochTrace::CostRecord::ThreadCost& cost =
        epoch.cost.threads[i];
    PMG_CHECK(slice.thread == cost.thread);
    EpochCost::ThreadCost tc;
    tc.thread = slice.thread;
    tc.user_ns = slice.user_ns;
    tc.kernel_ns = slice.kernel_ns;
    tc.user_exact_ns = cost.user_exact_ns;
    tc.compute_ns = cost.compute_ns;
    tc.retry_ns = cost.retry_ns;
    for (size_t c = 0; c < memsim::kCostClassCount; ++c) {
      tc.counts[c] = cost.counts[c];
    }
    ec.threads.push_back(tc);
  }
  ec.channels = epoch.cost.channels;
  ec.fills = epoch.cost.fills;
  journal_.total_ns += epoch.total_ns;
  journal_.epochs.push_back(std::move(ec));
  if (downstream_ != nullptr) downstream_->OnEpochTrace(epoch);
}

void JournalRecorder::OnInstant(memsim::TraceInstantKind kind, ThreadId thread,
                                SimNs at_ns, uint64_t value) {
  if (downstream_ != nullptr) downstream_->OnInstant(kind, thread, at_ns, value);
}

std::string JournalToJson(const CostJournal& journal) {
  trace::JsonWriter w;
  w.BeginObject();
  w.Key("pmgj_version").UInt(journal.schema_version);
  w.Key("machine").String(journal.machine_name);
  w.Key("kind").String(KindName(journal.kind));
  w.Key("sockets").UInt(journal.sockets);
  w.Key("migration_enabled").Bool(journal.migration_enabled);
  WriteTimings(&w, journal.timings);
  w.Key("total_ns").UInt(journal.total_ns);
  w.Key("epochs_total").UInt(journal.epochs.size());
  w.Key("epochs").BeginArray();
  for (const EpochCost& e : journal.epochs) {
    w.BeginObject();
    w.Key("i").UInt(e.epoch_index);
    w.Key("act").UInt(e.active_threads);
    w.Key("at").UInt(e.start_ns);
    w.Key("tot").UInt(e.total_ns);
    w.Key("lat").UInt(e.latency_path_ns);
    w.Key("bw").UInt(e.bandwidth_path_ns);
    w.Key("dm").UInt(e.daemon_ns);
    w.Key("bb").Bool(e.bandwidth_bound);
    w.Key("crit").UInt(e.critical_thread);
    w.Key("rf").Double(e.remote_factor);
    w.Key("dscan").UInt(e.daemon_scan_raw);
    w.Key("dshoot").UInt(e.daemon_shootdown_raw);
    w.Key("dmove").UInt(e.daemon_move_ns);
    w.Key("mig").UInt(e.migrations);
    w.Key("threads").BeginArray();
    for (const EpochCost::ThreadCost& t : e.threads) {
      w.BeginArray();
      w.UInt(t.thread).UInt(t.user_ns).UInt(t.kernel_ns);
      w.Double(t.user_exact_ns).Double(t.compute_ns).Double(t.retry_ns);
      w.BeginArray();
      for (size_t c = 0; c < memsim::kCostClassCount; ++c) {
        w.UInt(t.counts[c]);
      }
      w.EndArray();
      w.EndArray();
    }
    w.EndArray();
    w.Key("channels").BeginArray();
    for (const memsim::ChannelByteCounts& ch : e.channels) {
      WriteChannels(&w, ch);
    }
    w.EndArray();
    w.Key("fills").BeginArray();
    for (const auto& f : e.fills) {
      w.BeginArray().UInt(f.fill_bytes).UInt(f.writeback_bytes).EndArray();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

bool JournalFromJson(const std::string& text, CostJournal* out,
                     std::string* error) {
  std::string local_error;
  if (error == nullptr) error = &local_error;
  trace::JsonValue doc;
  if (!trace::JsonValue::Parse(text, &doc, error)) {
    *error = "journal parse error: " + *error;
    return false;
  }
  if (doc.kind != trace::JsonValue::Kind::kObject) {
    *error = "journal document is not a JSON object";
    return false;
  }
  uint64_t version = 0;
  if (!GetUInt(doc, "pmgj_version", &version, error)) return false;
  if (version != kJournalSchemaVersion) {
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "unsupported .pmgj version %llu (this tool reads version %u)",
                  static_cast<unsigned long long>(version),
                  kJournalSchemaVersion);
    *error = buf;
    return false;
  }
  CostJournal j;
  j.schema_version = static_cast<uint32_t>(version);
  const trace::JsonValue* name = doc.Find("machine");
  if (name == nullptr || name->kind != trace::JsonValue::Kind::kString) {
    *error = "missing string field 'machine'";
    return false;
  }
  j.machine_name = name->string_value;
  const trace::JsonValue* kind = doc.Find("kind");
  if (kind == nullptr || kind->kind != trace::JsonValue::Kind::kString ||
      !KindFromName(kind->string_value, &j.kind)) {
    *error = "missing or unknown machine 'kind'";
    return false;
  }
  uint64_t u = 0;
  if (!GetUInt(doc, "sockets", &u, error)) return false;
  j.sockets = static_cast<uint32_t>(u);
  const trace::JsonValue* mig = doc.Find("migration_enabled");
  if (mig == nullptr || mig->kind != trace::JsonValue::Kind::kBool) {
    *error = "missing bool field 'migration_enabled'";
    return false;
  }
  j.migration_enabled = mig->bool_value;
  if (!ParseTimings(doc, &j.timings, error)) return false;
  if (j.timings.mem_parallelism < 1.0) {
    *error = "journal mem_parallelism below 1";
    return false;
  }
  if (!GetUInt(doc, "total_ns", &j.total_ns, error)) return false;
  uint64_t epochs_total = 0;
  if (!GetUInt(doc, "epochs_total", &epochs_total, error)) return false;
  const trace::JsonValue* epochs = doc.Find("epochs");
  if (epochs == nullptr || epochs->kind != trace::JsonValue::Kind::kArray) {
    *error = "missing 'epochs' array";
    return false;
  }
  if (epochs->array.size() != epochs_total) {
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "journal truncated: %zu epochs present, header says %llu",
                  epochs->array.size(),
                  static_cast<unsigned long long>(epochs_total));
    *error = buf;
    return false;
  }
  SimNs sum = 0;
  for (const trace::JsonValue& e : epochs->array) {
    EpochCost ec;
    if (!ParseEpoch(e, &ec, error)) {
      *error = "epoch " + std::to_string(j.epochs.size()) + ": " + *error;
      return false;
    }
    if (ec.channels.size() != j.sockets) {
      *error = "epoch " + std::to_string(j.epochs.size()) +
               ": channel socket count mismatch";
      return false;
    }
    sum += ec.total_ns;
    j.epochs.push_back(std::move(ec));
  }
  if (sum != j.total_ns) {
    *error = "journal total_ns does not match the sum of its epochs";
    return false;
  }
  *out = std::move(j);
  return true;
}

bool SaveJournal(const CostJournal& journal, const std::string& path,
                 std::string* error) {
  const std::string text = JournalToJson(journal);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open '" + path + "' for writing";
    return false;
  }
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const bool ok = std::fclose(f) == 0 && written == text.size();
  if (!ok && error != nullptr) *error = "short write to '" + path + "'";
  return ok;
}

bool LoadJournal(const std::string& path, CostJournal* out,
                 std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot read '" + path + "'";
    return false;
  }
  std::string text;
  char buf[65536];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);
  return JournalFromJson(text, out, error);
}

}  // namespace pmg::whatif
