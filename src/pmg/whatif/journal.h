#ifndef PMG_WHATIF_JOURNAL_H_
#define PMG_WHATIF_JOURNAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "pmg/common/types.h"
#include "pmg/memsim/cost_model.h"
#include "pmg/memsim/machine.h"
#include "pmg/memsim/trace_sink.h"

/// \file journal.h
/// The epoch cost journal: a compact record of every priced input of
/// Machine::EndEpoch, captured through the TraceSink seam. A journal plus
/// a MemoryTimings is enough to re-derive every epoch's
/// max(latency critical path, bandwidth roofline) + daemon cost — the
/// whatif re-pricer (reprice.h) does exactly that, and with the
/// recording machine's own timings it reproduces MachineStats::total_ns
/// bit for bit (the identity law, PMG_CHECKed in VerifyIdentity).
///
/// Journals serialize to versioned `.pmgj` JSON documents. Doubles are
/// written with %.17g (exact IEEE-754 round-trip through strtod), so a
/// save/load cycle re-prices byte-identically.

namespace pmg::whatif {

/// Bump on any change to the .pmgj document layout; pmg_explain refuses
/// mismatched files (see docs/observability.md for the procedure).
inline constexpr uint32_t kJournalSchemaVersion = 1;

/// The priced inputs of one epoch.
struct EpochCost {
  uint64_t epoch_index = 0;
  uint32_t active_threads = 0;
  SimNs start_ns = 0;
  /// The recorded outcome (identity re-pricing must reproduce total_ns).
  SimNs total_ns = 0;
  SimNs latency_path_ns = 0;
  SimNs bandwidth_path_ns = 0;
  SimNs daemon_ns = 0;
  bool bandwidth_bound = false;
  ThreadId critical_thread = 0;
  /// Degraded-link factor the roofline was priced with.
  double remote_factor = 1.0;
  /// Migration-daemon inputs (zero when no scan ran this epoch).
  SimNs daemon_scan_raw = 0;
  SimNs daemon_shootdown_raw = 0;
  SimNs daemon_move_ns = 0;
  uint64_t migrations = 0;

  struct ThreadCost {
    ThreadId thread = 0;
    /// Recorded integral clocks (what EndEpoch compared).
    SimNs user_ns = 0;
    SimNs kernel_ns = 0;
    /// The exact fractional user clock (user_ns is its truncation).
    double user_exact_ns = 0;
    /// Recorded sums of the class-less user charges.
    double compute_ns = 0;
    double retry_ns = 0;
    uint64_t counts[memsim::kCostClassCount] = {};
  };
  /// Threads with nonzero time, ascending thread id.
  std::vector<ThreadCost> threads;

  /// Per-socket channel byte counters (full split).
  std::vector<memsim::ChannelByteCounts> channels;
  /// Per-socket near-memory miss fill/writeback bytes (memory mode).
  std::vector<memsim::EpochTrace::CostRecord::SocketFill> fills;
};

/// A recorded run: the pricing context plus every epoch.
struct CostJournal {
  uint32_t schema_version = kJournalSchemaVersion;
  std::string machine_name;
  memsim::MachineKind kind = memsim::MachineKind::kDramMain;
  uint32_t sockets = 0;
  bool migration_enabled = false;
  memsim::MemoryTimings timings;
  /// Sum of epoch totals over the recorded window (equals the machine's
  /// MachineStats::total_ns delta across the attachments, PMG_CHECKed at
  /// Detach).
  SimNs total_ns = 0;
  std::vector<EpochCost> epochs;
};

/// Records a journal from a live machine. Chains in front of any
/// already-attached TraceSink (a trace::TraceSession), forwarding every
/// event downstream, so --trace / --json / --explain compose. Supports
/// re-attachment across machines (crash recovery): epochs append onto
/// one journal as long as the machines price identically (same kind,
/// sockets, timings — PMG_CHECKed).
class JournalRecorder final : public memsim::TraceSink {
 public:
  JournalRecorder() = default;

  /// Captures the machine's pricing context and splices this recorder in
  /// front of the machine's current sink. Attach after any TraceSession,
  /// detach before it.
  void Attach(memsim::Machine* machine);
  void Detach();
  bool attached() const { return machine_ != nullptr; }

  const CostJournal& journal() const { return journal_; }

  // TraceSink:
  bool WantsCostModel() const override { return true; }
  void OnEpochTrace(const memsim::EpochTrace& epoch) override;
  void OnInstant(memsim::TraceInstantKind kind, ThreadId thread, SimNs at_ns,
                 uint64_t value) override;

 private:
  CostJournal journal_;
  memsim::Machine* machine_ = nullptr;
  memsim::TraceSink* downstream_ = nullptr;
  SimNs stats_base_total_ = 0;
  SimNs captured_total_ = 0;
  bool header_set_ = false;
};

/// Serializes `journal` as a .pmgj document.
std::string JournalToJson(const CostJournal& journal);

/// Parses a .pmgj document. On failure returns false with a one-line
/// description in `*error` (never PMG_CHECK-aborts on malformed input).
bool JournalFromJson(const std::string& text, CostJournal* out,
                     std::string* error);

/// File convenience wrappers around the two above.
bool SaveJournal(const CostJournal& journal, const std::string& path,
                 std::string* error);
bool LoadJournal(const std::string& path, CostJournal* out,
                 std::string* error);

}  // namespace pmg::whatif

#endif  // PMG_WHATIF_JOURNAL_H_
