#include "pmg/whatif/reprice.h"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "pmg/common/check.h"
#include "pmg/memsim/cost_model.h"

namespace pmg::whatif {

namespace {

using memsim::ApplyKernelFactor;
using memsim::ChannelByteCounts;
using memsim::ChannelTimeNs;
using memsim::CostClass;
using memsim::KernelEventCostNs;
using memsim::kCostClassCount;
using memsim::kFirstKernelCostClass;
using memsim::UserEventCostNs;

constexpr size_t kWalk4 = static_cast<size_t>(CostClass::kTlbWalk4);
constexpr size_t kWalk3 = static_cast<size_t>(CostClass::kTlbWalk3);
constexpr size_t kWalk2 = static_cast<size_t>(CostClass::kTlbWalk2);
constexpr size_t kMissL = static_cast<size_t>(CostClass::kPmmMissLocal);
constexpr size_t kMissR = static_cast<size_t>(CostClass::kPmmMissRemote);
constexpr size_t kHitL = static_cast<size_t>(CostClass::kNearHitLocal);
constexpr size_t kHitR = static_cast<size_t>(CostClass::kNearHitRemote);
constexpr size_t kFaultS = static_cast<size_t>(CostClass::kMinorFaultSmall);
constexpr size_t kFaultH = static_cast<size_t>(CostClass::kMinorFaultHuge);
constexpr size_t kHint = static_cast<size_t>(CostClass::kHintFault);

/// The per-event price tables of one scenario.
struct PriceTable {
  double user[kCostClassCount] = {};
  SimNs kernel[kCostClassCount] = {};
};

PriceTable BuildTable(memsim::MachineKind kind,
                      const memsim::MemoryTimings& tm,
                      const Counterfactual* cf) {
  PriceTable pt;
  const double inv_mlp = 1.0 / tm.mem_parallelism;
  for (size_t c = 0; c < kFirstKernelCostClass; ++c) {
    pt.user[c] = UserEventCostNs(static_cast<CostClass>(c), kind, tm, inv_mlp);
  }
  for (size_t c = kFirstKernelCostClass; c < kCostClassCount; ++c) {
    pt.kernel[c] = KernelEventCostNs(static_cast<CostClass>(c), kind, tm);
  }
  if (cf == nullptr) return pt;
  if (cf->perfect_tlb) {
    pt.user[kWalk4] = 0.0;
    pt.user[kWalk3] = 0.0;
    pt.user[kWalk2] = 0.0;
  } else if (cf->huge_pages) {
    pt.user[kWalk4] = pt.user[kWalk3];
  }
  if (cf->huge_pages) {
    // One huge fault maps 512 small pages' worth of memory.
    pt.kernel[kFaultS] = pt.kernel[kFaultH] / 512;
  }
  if (cf->perfect_near_mem) {
    pt.user[kMissL] = pt.user[kHitL];
    pt.user[kMissR] = pt.user[kHitR];
  }
  if (cf->zero_migration) {
    pt.kernel[kHint] = 0;
  }
  return pt;
}

uint64_t SaturatingSub(uint64_t a, uint64_t b) { return a > b ? a - b : 0; }

}  // namespace

Counterfactual IdentityCounterfactual(const CostJournal& journal) {
  Counterfactual cf;
  cf.timings = journal.timings;
  return cf;
}

RepriceResult Reprice(const CostJournal& journal, const Counterfactual& cf) {
  const memsim::MachineKind kind = journal.kind;
  // The old table is the journal's recorded pricing with no knobs; the
  // new one applies the counterfactual. Identity: both tables are built
  // by the same code from the same timings, so every per-class delta is
  // exactly 0.0.
  const PriceTable old_pt = BuildTable(kind, journal.timings, nullptr);
  const PriceTable new_pt = BuildTable(kind, cf.timings, &cf);
  const SimNs remap_cost = ApplyKernelFactor(1000, kind, cf.timings);

  RepriceResult result;
  result.epochs.reserve(journal.epochs.size());
  for (const EpochCost& e : journal.epochs) {
    EpochReprice er;

    // Latency critical path: max over threads, first maximum winning,
    // matching Machine::EndEpoch's scan order (threads are journaled in
    // ascending id order; omitted threads have zero time and never win).
    SimNs lat = 0;
    for (const EpochCost::ThreadCost& tc : e.threads) {
      double delta = 0.0;
      for (size_t c = 0; c < kFirstKernelCostClass; ++c) {
        delta += static_cast<double>(tc.counts[c]) *
                 (new_pt.user[c] - old_pt.user[c]);
      }
      const double user_exact = tc.user_exact_ns + delta;
      const SimNs user =
          user_exact <= 0.0 ? 0 : static_cast<SimNs>(user_exact);
      SimNs kernel = 0;
      for (size_t c = kFirstKernelCostClass; c < kCostClassCount; ++c) {
        kernel += tc.counts[c] * new_pt.kernel[c];
      }
      const SimNs total = user + kernel;
      if (total > lat) {
        lat = total;
        er.critical_thread = tc.thread;
      }
    }
    er.latency_path_ns = lat;

    // Bandwidth roofline: the recorded byte counters under the new
    // bandwidth rows, with the recorded degraded-link factor.
    SimNs bw = 0;
    if (!cf.infinite_bandwidth) {
      for (size_t s = 0; s < e.channels.size(); ++s) {
        ChannelByteCounts ch = e.channels[s];
        if (cf.perfect_near_mem && s < e.fills.size()) {
          // Fills are media-side local sequential reads; writebacks
          // local sequential writes (Machine::Access). Saturating, so a
          // hand-edited journal degrades instead of wrapping.
          ch.pmm[0][0][0] =
              SaturatingSub(ch.pmm[0][0][0], e.fills[s].fill_bytes);
          ch.pmm[0][0][1] =
              SaturatingSub(ch.pmm[0][0][1], e.fills[s].writeback_bytes);
        }
        bw = std::max(bw, ChannelTimeNs(ch, cf.timings, e.remote_factor));
      }
    }
    er.bandwidth_path_ns = bw;
    er.bandwidth_bound = bw > lat;
    if (er.bandwidth_bound) ++result.bandwidth_bound_epochs;

    SimNs daemon = 0;
    if (!cf.zero_migration && e.daemon_ns > 0) {
      daemon = ApplyKernelFactor(e.daemon_scan_raw, kind, cf.timings) +
               e.daemon_move_ns + e.migrations * remap_cost;
      if (e.migrations > 0) {
        daemon += ApplyKernelFactor(e.daemon_shootdown_raw, kind, cf.timings);
      }
    }
    er.daemon_ns = daemon;
    er.total_ns = std::max(lat, bw) + daemon;
    result.total_ns += er.total_ns;
    result.epochs.push_back(er);
  }
  return result;
}

void VerifyIdentity(const CostJournal& journal) {
  const RepriceResult identity =
      Reprice(journal, IdentityCounterfactual(journal));
  PMG_CHECK(identity.epochs.size() == journal.epochs.size());
  for (size_t i = 0; i < journal.epochs.size(); ++i) {
    const EpochCost& e = journal.epochs[i];
    const EpochReprice& r = identity.epochs[i];
    PMG_CHECK_MSG(r.latency_path_ns == e.latency_path_ns &&
                      r.bandwidth_path_ns == e.bandwidth_path_ns &&
                      r.daemon_ns == e.daemon_ns &&
                      r.total_ns == e.total_ns &&
                      r.bandwidth_bound == e.bandwidth_bound &&
                      r.critical_thread == e.critical_thread,
                  "identity re-pricing diverged at epoch %llu: "
                  "%llu ns re-priced vs %llu ns recorded",
                  static_cast<unsigned long long>(e.epoch_index),
                  static_cast<unsigned long long>(r.total_ns),
                  static_cast<unsigned long long>(e.total_ns));
  }
  PMG_CHECK_MSG(identity.total_ns == journal.total_ns,
                "identity re-pricing diverged: %llu ns vs %llu ns recorded",
                static_cast<unsigned long long>(identity.total_ns),
                static_cast<unsigned long long>(journal.total_ns));
}

std::vector<Counterfactual> StandardKnobs(const CostJournal& journal) {
  std::vector<Counterfactual> knobs;

  {
    Counterfactual cf;
    cf.name = "dram-speed-pmm";
    cf.description = "PMM media as fast as DRAM (latency, bandwidth, kernel)";
    cf.timings = journal.timings;
    cf.timings.near_mem_hit_local_ns = cf.timings.dram_local_ns;
    cf.timings.near_mem_hit_remote_ns = cf.timings.dram_remote_ns;
    cf.timings.near_mem_miss_extra_ns = 0;
    cf.timings.appdirect_local_ns = cf.timings.dram_local_ns;
    cf.timings.appdirect_remote_ns = cf.timings.dram_remote_ns;
    cf.timings.walk_step_pmm_ns = cf.timings.walk_step_dram_ns;
    cf.timings.pmm_kernel_factor = 1.0;
    cf.timings.pmm_local = cf.timings.dram_local;
    cf.timings.pmm_remote = cf.timings.dram_remote;
    knobs.push_back(cf);
  }
  {
    Counterfactual cf;
    cf.name = "perfect-near-mem";
    cf.description = "every near-memory miss hits (no media fills)";
    cf.timings = journal.timings;
    cf.perfect_near_mem = true;
    knobs.push_back(cf);
  }
  {
    Counterfactual cf;
    cf.name = "perfect-tlb";
    cf.description = "page-table walks are free";
    cf.timings = journal.timings;
    cf.perfect_tlb = true;
    knobs.push_back(cf);
  }
  {
    Counterfactual cf;
    cf.name = "huge-pages";
    cf.description = "4KB pages priced as 2MB (walk levels, fault batching)";
    cf.timings = journal.timings;
    cf.huge_pages = true;
    knobs.push_back(cf);
  }
  {
    Counterfactual cf;
    cf.name = "zero-migration";
    cf.description = "no migration daemon, no hint faults";
    cf.timings = journal.timings;
    cf.zero_migration = true;
    knobs.push_back(cf);
  }
  {
    Counterfactual cf;
    cf.name = "infinite-bandwidth";
    cf.description = "the channel roofline never binds";
    cf.timings = journal.timings;
    cf.infinite_bandwidth = true;
    knobs.push_back(cf);
  }
  return knobs;
}

RegionSpeedup EstimateRegionSpeedup(const CostJournal& journal,
                                    const std::string& folded_text,
                                    const std::string& label, double factor) {
  RegionSpeedup out;
  PMG_CHECK_MSG(factor >= 1.0, "virtual speedup factor must be >= 1");
  size_t pos = 0;
  while (pos < folded_text.size()) {
    size_t eol = folded_text.find('\n', pos);
    if (eol == std::string::npos) eol = folded_text.size();
    const std::string line = folded_text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    const size_t space = line.rfind(' ');
    if (space == std::string::npos) continue;
    const uint64_t count =
        std::strtoull(line.c_str() + space + 1, nullptr, 10);
    const std::string stack = line.substr(0, space);
    out.total_samples += count;
    // Frame match: the label must equal one ';'-separated frame exactly.
    bool matched = false;
    size_t fpos = 0;
    while (fpos <= stack.size() && !matched) {
      size_t fend = stack.find(';', fpos);
      if (fend == std::string::npos) fend = stack.size();
      matched = stack.compare(fpos, fend - fpos, label) == 0;
      fpos = fend + 1;
    }
    if (matched) out.samples += count;
  }
  out.found = out.samples > 0;
  out.share = out.total_samples == 0
                  ? 0.0
                  : static_cast<double>(out.samples) /
                        static_cast<double>(out.total_samples);
  // COZ virtual speedup: the region's share of run time shrinks by
  // (1 - 1/factor); everything else is unchanged.
  const double scale = 1.0 - out.share * (1.0 - 1.0 / factor);
  out.predicted_total_ns =
      static_cast<SimNs>(static_cast<double>(journal.total_ns) * scale);
  out.speedup = out.predicted_total_ns == 0
                    ? 1.0
                    : static_cast<double>(journal.total_ns) /
                          static_cast<double>(out.predicted_total_ns);
  return out;
}

}  // namespace pmg::whatif
