#include "pmg/whatif/explain.h"

#include <algorithm>
#include <map>

#include "pmg/common/check.h"

namespace pmg::whatif {

namespace {

const char* KindName(memsim::MachineKind kind) {
  switch (kind) {
    case memsim::MachineKind::kDramMain:
      return "dram";
    case memsim::MachineKind::kMemoryMode:
      return "memory";
    case memsim::MachineKind::kAppDirect:
      return "appdirect";
  }
  return "?";
}

size_t ImbalanceBucket(double ratio) {
  if (ratio < 1.1) return 0;
  if (ratio < 1.25) return 1;
  if (ratio < 1.5) return 2;
  if (ratio < 2.0) return 3;
  return 4;
}

}  // namespace

const char* ImbalanceBucketName(size_t bucket) {
  switch (bucket) {
    case 0:
      return "<1.1x";
    case 1:
      return "1.1-1.25x";
    case 2:
      return "1.25-1.5x";
    case 3:
      return "1.5-2x";
    case 4:
      return ">=2x";
  }
  return "?";
}

ExplainReport BuildExplainReport(const CostJournal& journal) {
  VerifyIdentity(journal);

  ExplainReport r;
  r.machine_name = journal.machine_name;
  r.kind = KindName(journal.kind);
  r.sockets = journal.sockets;
  r.migration_enabled = journal.migration_enabled;
  r.epochs = journal.epochs.size();
  r.total_ns = journal.total_ns;

  std::map<ThreadId, ExplainReport::ThreadBlame> blame;
  for (const EpochCost& e : journal.epochs) {
    // Bound classification: daemon first (it is additive on top of
    // whichever path won), then the recorded path comparison.
    if (e.daemon_ns * 2 >= e.total_ns && e.daemon_ns > 0) {
      ++r.daemon_bound_epochs;
      r.daemon_bound_ns += e.total_ns;
    } else if (e.bandwidth_bound) {
      ++r.bandwidth_bound_epochs;
      r.bandwidth_bound_ns += e.total_ns;
    } else {
      ++r.latency_bound_epochs;
      r.latency_bound_ns += e.total_ns;
    }

    if (e.latency_path_ns == 0) continue;
    if (!e.bandwidth_bound) {
      ExplainReport::ThreadBlame& b = blame[e.critical_thread];
      b.thread = e.critical_thread;
      ++b.critical_epochs;
      b.critical_ns += e.latency_path_ns;
    }
    if (e.threads.size() >= 2) {
      SimNs sum = 0;
      for (const EpochCost::ThreadCost& tc : e.threads) {
        const SimNs t = tc.user_ns + tc.kernel_ns;
        sum += t;
        r.barrier_idle_ns += e.latency_path_ns - t;
      }
      const double mean = static_cast<double>(sum) /
                          static_cast<double>(e.threads.size());
      const double ratio =
          mean <= 0.0 ? 1.0
                      : static_cast<double>(e.latency_path_ns) / mean;
      ++r.imbalance[ImbalanceBucket(ratio)];
    }
  }

  for (const auto& [tid, b] : blame) r.stragglers.push_back(b);
  std::stable_sort(r.stragglers.begin(), r.stragglers.end(),
                   [](const ExplainReport::ThreadBlame& a,
                      const ExplainReport::ThreadBlame& b) {
                     if (a.critical_ns != b.critical_ns)
                       return a.critical_ns > b.critical_ns;
                     return a.thread < b.thread;
                   });

  for (const Counterfactual& cf : StandardKnobs(journal)) {
    const RepriceResult rr = Reprice(journal, cf);
    ExplainReport::Lever lever;
    lever.name = cf.name;
    lever.description = cf.description;
    lever.predicted_total_ns = rr.total_ns;
    lever.speedup = rr.total_ns == 0
                        ? 1.0
                        : static_cast<double>(journal.total_ns) /
                              static_cast<double>(rr.total_ns);
    lever.bandwidth_bound_epochs = rr.bandwidth_bound_epochs;
    r.levers.push_back(std::move(lever));
  }
  std::stable_sort(r.levers.begin(), r.levers.end(),
                   [](const ExplainReport::Lever& a,
                      const ExplainReport::Lever& b) {
                     if (a.speedup != b.speedup) return a.speedup > b.speedup;
                     return a.name < b.name;
                   });
  return r;
}

void WriteExplainJson(const ExplainReport& report, trace::JsonWriter* w) {
  PMG_CHECK(w != nullptr);
  w->BeginObject();
  w->Key("machine");
  w->String(report.machine_name);
  w->Key("kind");
  w->String(report.kind);
  w->Key("sockets");
  w->UInt(report.sockets);
  w->Key("migration");
  w->Bool(report.migration_enabled);
  w->Key("epochs");
  w->UInt(report.epochs);
  w->Key("total_ns");
  w->UInt(report.total_ns);

  w->Key("bound");
  w->BeginObject();
  w->Key("latency_epochs");
  w->UInt(report.latency_bound_epochs);
  w->Key("latency_ns");
  w->UInt(report.latency_bound_ns);
  w->Key("bandwidth_epochs");
  w->UInt(report.bandwidth_bound_epochs);
  w->Key("bandwidth_ns");
  w->UInt(report.bandwidth_bound_ns);
  w->Key("daemon_epochs");
  w->UInt(report.daemon_bound_epochs);
  w->Key("daemon_ns");
  w->UInt(report.daemon_bound_ns);
  w->EndObject();

  w->Key("stragglers");
  w->BeginArray();
  for (const ExplainReport::ThreadBlame& b : report.stragglers) {
    w->BeginObject();
    w->Key("thread");
    w->UInt(b.thread);
    w->Key("critical_epochs");
    w->UInt(b.critical_epochs);
    w->Key("critical_ns");
    w->UInt(b.critical_ns);
    w->EndObject();
  }
  w->EndArray();

  w->Key("imbalance");
  w->BeginObject();
  for (size_t i = 0; i < kImbalanceBuckets; ++i) {
    w->Key(ImbalanceBucketName(i));
    w->UInt(report.imbalance[i]);
  }
  w->EndObject();
  w->Key("barrier_idle_ns");
  w->UInt(report.barrier_idle_ns);

  w->Key("levers");
  w->BeginArray();
  for (const ExplainReport::Lever& l : report.levers) {
    w->BeginObject();
    w->Key("name");
    w->String(l.name);
    w->Key("description");
    w->String(l.description);
    w->Key("predicted_total_ns");
    w->UInt(l.predicted_total_ns);
    w->Key("speedup");
    w->Double(l.speedup);
    w->Key("bandwidth_bound_epochs");
    w->UInt(l.bandwidth_bound_epochs);
    w->EndObject();
  }
  w->EndArray();
  w->EndObject();
}

}  // namespace pmg::whatif
