#ifndef PMG_WHATIF_EXPLAIN_H_
#define PMG_WHATIF_EXPLAIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "pmg/common/types.h"
#include "pmg/trace/json.h"
#include "pmg/whatif/journal.h"
#include "pmg/whatif/reprice.h"

/// \file explain.h
/// The bottleneck explainer: classifies every journaled epoch as
/// latency-, bandwidth-, or daemon-bound, attributes each epoch barrier
/// to its critical thread with a straggler-imbalance histogram, and ranks
/// the standard counterfactual knobs (reprice.h) into a "top levers"
/// table. BuildExplainReport() runs VerifyIdentity() first, so every
/// explanation is backed by a journal that provably reproduces the run.

namespace pmg::whatif {

/// Imbalance histogram buckets: critical thread time / mean thread time.
/// Fixed edges so golden output is stable: <1.1, 1.1-1.25, 1.25-1.5,
/// 1.5-2, >=2.
inline constexpr size_t kImbalanceBuckets = 5;
const char* ImbalanceBucketName(size_t bucket);

struct ExplainReport {
  std::string machine_name;
  std::string kind;
  uint32_t sockets = 0;
  bool migration_enabled = false;
  uint64_t epochs = 0;
  SimNs total_ns = 0;

  /// Epoch bound classification. An epoch is daemon-bound when daemon
  /// overhead is at least half its total, else bandwidth-bound when the
  /// roofline exceeded the latency path, else latency-bound. The _ns
  /// sums are of whole-epoch totals, so they add up to total_ns.
  uint64_t latency_bound_epochs = 0;
  uint64_t bandwidth_bound_epochs = 0;
  uint64_t daemon_bound_epochs = 0;
  SimNs latency_bound_ns = 0;
  SimNs bandwidth_bound_ns = 0;
  SimNs daemon_bound_ns = 0;

  /// Straggler attribution: per-thread share of the epochs whose barrier
  /// it set (latency-path epochs only), sorted by critical time
  /// descending, thread id ascending on ties.
  struct ThreadBlame {
    ThreadId thread = 0;
    uint64_t critical_epochs = 0;
    SimNs critical_ns = 0;  ///< sum of latency paths it set
  };
  std::vector<ThreadBlame> stragglers;

  /// Histogram of critical/mean thread-time ratios over multi-thread
  /// epochs with a nonzero latency path.
  uint64_t imbalance[kImbalanceBuckets] = {};
  /// Simulated time journaled threads spent waiting at epoch barriers
  /// (sum over epochs of latency path minus each thread's own time).
  SimNs barrier_idle_ns = 0;

  /// The standard knobs, re-priced and ranked by speedup descending
  /// (name ascending on ties, so the table is deterministic).
  struct Lever {
    std::string name;
    std::string description;
    SimNs predicted_total_ns = 0;
    double speedup = 1.0;
    uint64_t bandwidth_bound_epochs = 0;
  };
  std::vector<Lever> levers;
};

/// Verifies the identity law on `journal` (PMG_CHECK), then classifies
/// epochs, attributes stragglers, and re-prices the standard knobs.
ExplainReport BuildExplainReport(const CostJournal& journal);

/// Appends the report as one JSON object value (the caller writes the
/// surrounding key). Used for --explain=json and the run report's
/// "whatif" section.
void WriteExplainJson(const ExplainReport& report, trace::JsonWriter* w);

}  // namespace pmg::whatif

#endif  // PMG_WHATIF_EXPLAIN_H_
