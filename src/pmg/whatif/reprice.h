#ifndef PMG_WHATIF_REPRICE_H_
#define PMG_WHATIF_REPRICE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "pmg/common/types.h"
#include "pmg/memsim/timings.h"
#include "pmg/whatif/journal.h"

/// \file reprice.h
/// Counterfactual re-pricing of a cost journal. Reprice() replays every
/// recorded epoch under a modified MemoryTimings (plus structural knobs),
/// recomputing max(latency critical path, bandwidth roofline) + daemon
/// cost through the same cost_model.h functions the machine itself used.
/// The identity law: re-pricing under an unmodified Counterfactual
/// reproduces the journal's recorded totals bit for bit, because the
/// per-thread user clock is adjusted by (new sum - old sum) of
/// count x price terms that are computed by identical code — an identity
/// delta is exactly 0.0, not merely small.
///
/// The knobs model *pricing* changes only: event streams (hit rates,
/// fault counts, migration decisions) are the recorded ones. A knob whose
/// real effect is behavioral (zero-migration changes later locality) is
/// an upper bound on the recorded run, which is exactly what a "top
/// levers" ranking needs; tests bound the gap against real re-runs.

namespace pmg::whatif {

/// One what-if scenario.
struct Counterfactual {
  std::string name = "identity";
  std::string description = "recorded timings, unchanged";
  /// The timings to re-price under (start from the journal's).
  memsim::MemoryTimings timings;
  /// Drop the migration daemon and AutoNUMA hint faults entirely.
  bool zero_migration = false;
  /// Page-table walks become free (infinite TLB).
  bool perfect_tlb = false;
  /// Every near-memory miss is priced as the corresponding hit, and the
  /// miss-induced media fill/writeback traffic leaves the roofline.
  bool perfect_near_mem = false;
  /// The bandwidth roofline never binds.
  bool infinite_bandwidth = false;
  /// 4KB pages behave like 2MB: 4-level walks priced as 3-level, and
  /// small-page minor faults priced at 1/512 of a huge-page fault.
  bool huge_pages = false;
};

/// Re-priced outcome of one epoch.
struct EpochReprice {
  SimNs total_ns = 0;
  SimNs latency_path_ns = 0;
  SimNs bandwidth_path_ns = 0;
  SimNs daemon_ns = 0;
  bool bandwidth_bound = false;
  ThreadId critical_thread = 0;
};

struct RepriceResult {
  SimNs total_ns = 0;
  uint64_t bandwidth_bound_epochs = 0;
  std::vector<EpochReprice> epochs;
};

/// The unchanged scenario for `journal` (same timings, no knobs).
Counterfactual IdentityCounterfactual(const CostJournal& journal);

/// Replays `journal` under `cf`.
RepriceResult Reprice(const CostJournal& journal, const Counterfactual& cf);

/// PMG_CHECKs the identity law on `journal`: Reprice(identity) must
/// reproduce every epoch's recorded total and the journal's total_ns
/// bit-exactly. Run by pmg_explain on every journal it loads.
void VerifyIdentity(const CostJournal& journal);

/// The standard knob library, in a fixed order (the explainer ranks them
/// by predicted speedup afterwards).
std::vector<Counterfactual> StandardKnobs(const CostJournal& journal);

/// COZ-style virtual speedup of one PMG_PROF_SCOPE region: from a folded
/// profile (metrics::Profiler::FoldedText), the share of samples whose
/// stack contains `label` is sped up by `factor`.
struct RegionSpeedup {
  bool found = false;          ///< label appeared in at least one stack
  uint64_t samples = 0;        ///< samples containing the label
  uint64_t total_samples = 0;  ///< all samples in the profile
  double share = 0.0;
  SimNs predicted_total_ns = 0;
  double speedup = 1.0;        ///< recorded total / predicted total
};
RegionSpeedup EstimateRegionSpeedup(const CostJournal& journal,
                                    const std::string& folded_text,
                                    const std::string& label, double factor);

}  // namespace pmg::whatif

#endif  // PMG_WHATIF_REPRICE_H_
