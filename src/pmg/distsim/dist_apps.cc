#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "pmg/analytics/common.h"
#include "pmg/common/check.h"
#include "pmg/distsim/dist_engine.h"

/// \file dist_apps.cc
/// The accumulate-style distributed apps: PageRank (sum-reduce, no
/// broadcast), k-core (decrement-reduce), and betweenness centrality
/// (forward level/sigma phase with min+sum reduction, then a backward
/// dependency phase that must broadcast sigma/delta to mirrors each level
/// — the communication pattern that makes distributed bc so expensive on
/// high-diameter graphs, Table 4's 13.7x).

namespace pmg::distsim {

namespace {
constexpr uint64_t kMsgBytes = 16;

memsim::PagePolicy HostPolicy() {
  // At mini scale each host's arrays are far below 2MB, so explicit
  // huge pages would round every allocation up past the scaled per-host
  // capacity; model hosts with 4KB + THP instead.
  memsim::PagePolicy p;
  p.placement = memsim::Placement::kInterleaved;
  p.page_size = memsim::PageSizeClass::k4K;
  p.thp = true;
  return p;
}
}  // namespace

DistRunResult DistEngine::Pr(uint32_t max_rounds, double tolerance,
                             std::vector<double>* ranks) {
  DistRunResult out;
  const uint32_t nh = config_.hosts;
  const double damping = 0.85;
  const double base = 1.0 - damping;
  uint64_t total_vertices = 0;

  struct State {
    runtime::NumaArray<double> rank;   // owned
    runtime::NumaArray<double> accum;  // local copies (owned + mirrors)
    std::vector<uint8_t> mirror_dirty;
  };
  std::vector<State> st(nh);
  std::vector<SimNs> times(nh, 0);
  for (uint32_t h = 0; h < nh; ++h) {
    Host& host = hosts_[h];
    State& s = st[h];
    total_vertices += host.owned;
    s.rank = runtime::NumaArray<double>(host.machine.get(),
                                        std::max<uint64_t>(host.owned, 1),
                                        HostPolicy(), "pr.rank");
    s.accum = runtime::NumaArray<double>(
        host.machine.get(), std::max<uint64_t>(host.LocalCount(), 1),
        HostPolicy(), "pr.accum");
    s.mirror_dirty.assign(host.mirror_global.size(), 0);
    times[h] = host.rt->Timed([&] {
      host.rt->ParallelFor(0, host.owned, [&](ThreadId t, uint64_t v) {
        s.rank.Set(t, v, base);
      });
    });
  }
  CommitPhase(times, &out);

  double mean_delta = tolerance + 1;
  while (out.rounds < max_rounds && mean_delta > tolerance) {
    ++out.rounds;
    // Compute: reset accumulators, push rank/deg shares along out-edges.
    std::fill(times.begin(), times.end(), 0);
    for (uint32_t h = 0; h < nh; ++h) {
      Host& host = hosts_[h];
      State& s = st[h];
      times[h] = host.rt->Timed([&] {
        host.rt->ParallelFor(0, host.LocalCount(),
                             [&](ThreadId t, uint64_t v) {
          s.accum.Set(t, v, 0.0);
        });
        memsim::Machine& m = *host.machine;
        m.BeginEpoch(host.rt->threads());
        ThreadId t = 0;
        for (uint64_t v = 0; v < host.owned; ++v) {
          const auto [first, last] = host.graph->OutRange(t, v);
          const uint64_t deg = last - first;
          if (deg == 0) continue;
          const double share =
              s.rank.Get(t, v) / static_cast<double>(deg);
          for (EdgeId e = first; e < last; ++e) {
            const VertexId u = host.graph->OutDst(t, e);
            s.accum.Update(t, u, [&](double& x) { x += share; });
            if (!host.IsOwnedLocal(u)) s.mirror_dirty[u - host.owned] = 1;
          }
          t = (t + 1) % host.rt->threads();
        }
        m.EndEpoch();
      });
    }
    CommitPhase(times, &out);

    // Reduce: mirror accumulators sum into masters. No broadcast: ranks
    // are only ever read by their owner.
    uint64_t bytes = 0;
    std::vector<std::vector<std::pair<uint32_t, double>>> inbox(nh);
    for (uint32_t h = 0; h < nh; ++h) {
      Host& host = hosts_[h];
      State& s = st[h];
      for (uint32_t i = 0; i < s.mirror_dirty.size(); ++i) {
        if (s.mirror_dirty[i] == 0) continue;
        s.mirror_dirty[i] = 0;
        const VertexId g = host.mirror_global[i];
        const uint32_t owner = HostOf(g);
        inbox[owner].emplace_back(
            static_cast<uint32_t>(g - hosts_[owner].begin),
            s.accum.raw()[host.owned + i]);
        bytes += kMsgBytes;
      }
    }
    std::fill(times.begin(), times.end(), 0);
    double total_delta = 0;
    for (uint32_t h = 0; h < nh; ++h) {
      Host& host = hosts_[h];
      State& s = st[h];
      times[h] = host.rt->Timed([&] {
        memsim::Machine& m = *host.machine;
        m.BeginEpoch(host.rt->threads());
        ThreadId t = 0;
        for (const auto& [local, val] : inbox[h]) {
          s.accum.Update(t, local, [&](double& x) { x += val; });
          t = (t + 1) % host.rt->threads();
        }
        m.EndEpoch();
        // Apply: new rank from the fully reduced accumulator.
        host.rt->ParallelFor(0, host.owned, [&](ThreadId t2, uint64_t v) {
          const double next = base + damping * s.accum.Get(t2, v);
          // pmg-lint: allow(pmg-atomic-shared-write) fp sum in vertex
          // order is golden-locked; per-thread parts would change bits
          total_delta += std::fabs(next - s.rank.Get(t2, v));
          s.rank.Set(t2, v, next);
        });
      });
    }
    CommitPhase(times, &out);
    CommitComm(bytes, &out);
    mean_delta = total_delta / static_cast<double>(total_vertices);
  }
  if (ranks != nullptr) {
    ranks->assign(range_.back(), 0.0);
    for (uint32_t h = 0; h < nh; ++h) {
      for (uint64_t v = 0; v < hosts_[h].owned; ++v) {
        (*ranks)[hosts_[h].begin + v] = st[h].rank.raw()[v];
      }
    }
  }
  out.supported = true;
  return out;
}

DistRunResult DistEngine::Kcore(uint32_t k, std::vector<uint8_t>* alive) {
  DistRunResult out;
  const uint32_t nh = config_.hosts;
  struct State {
    runtime::NumaArray<uint32_t> deg;    // owned
    runtime::NumaArray<uint8_t> alive;   // owned
    runtime::NumaArray<uint32_t> decr;   // local copies
    std::vector<uint8_t> mirror_dirty;
  };
  std::vector<State> st(nh);
  std::vector<SimNs> times(nh, 0);
  for (uint32_t h = 0; h < nh; ++h) {
    Host& host = hosts_[h];
    State& s = st[h];
    s.deg = runtime::NumaArray<uint32_t>(host.machine.get(),
                                         std::max<uint64_t>(host.owned, 1),
                                         HostPolicy(), "kcore.deg");
    s.alive = runtime::NumaArray<uint8_t>(host.machine.get(),
                                          std::max<uint64_t>(host.owned, 1),
                                          HostPolicy(), "kcore.alive");
    s.decr = runtime::NumaArray<uint32_t>(
        host.machine.get(), std::max<uint64_t>(host.LocalCount(), 1),
        HostPolicy(), "kcore.decr");
    s.mirror_dirty.assign(host.mirror_global.size(), 0);
    times[h] = host.rt->Timed([&] {
      host.rt->ParallelFor(0, host.owned, [&](ThreadId t, uint64_t v) {
        const auto [first, last] = host.graph->OutRange(t, v);
        s.deg.Set(t, v, static_cast<uint32_t>(last - first));
        s.alive.Set(t, v, 1);
      });
      host.rt->ParallelFor(0, host.LocalCount(), [&](ThreadId t, uint64_t v) {
        s.decr.Set(t, v, 0);
      });
    });
  }
  CommitPhase(times, &out);

  uint64_t removed = 1;
  while (removed > 0) {
    ++out.rounds;
    removed = 0;
    std::fill(times.begin(), times.end(), 0);
    for (uint32_t h = 0; h < nh; ++h) {
      Host& host = hosts_[h];
      State& s = st[h];
      times[h] = host.rt->Timed([&] {
        memsim::Machine& m = *host.machine;
        m.BeginEpoch(host.rt->threads());
        ThreadId t = 0;
        // Bulk-synchronous peel: scan every owned vertex.
        for (uint64_t v = 0; v < host.owned; ++v) {
          if (s.alive.Get(t, v) == 0 || s.deg.Get(t, v) >= k) continue;
          s.alive.Set(t, v, 0);
          ++removed;
          host.graph->ForEachOutEdge(
              t, v, [&](ThreadId tt, VertexId u, uint32_t) {
                s.decr.Update(tt, u, [](uint32_t& x) { ++x; });
                if (!host.IsOwnedLocal(u)) {
                  s.mirror_dirty[u - host.owned] = 1;
                }
              });
          t = (t + 1) % host.rt->threads();
        }
        m.EndEpoch();
      });
    }
    CommitPhase(times, &out);

    uint64_t bytes = 0;
    std::vector<std::vector<std::pair<uint32_t, uint32_t>>> inbox(nh);
    for (uint32_t h = 0; h < nh; ++h) {
      Host& host = hosts_[h];
      State& s = st[h];
      for (uint32_t i = 0; i < s.mirror_dirty.size(); ++i) {
        if (s.mirror_dirty[i] == 0) continue;
        s.mirror_dirty[i] = 0;
        const VertexId g = host.mirror_global[i];
        const uint32_t owner = HostOf(g);
        inbox[owner].emplace_back(
            static_cast<uint32_t>(g - hosts_[owner].begin),
            s.decr.raw()[host.owned + i]);
        bytes += kMsgBytes;
      }
    }
    std::fill(times.begin(), times.end(), 0);
    for (uint32_t h = 0; h < nh; ++h) {
      Host& host = hosts_[h];
      State& s = st[h];
      times[h] = host.rt->Timed([&] {
        memsim::Machine& m = *host.machine;
        m.BeginEpoch(host.rt->threads());
        ThreadId t = 0;
        for (const auto& [local, cnt] : inbox[h]) {
          s.decr.Update(t, local, [&](uint32_t& x) { x += cnt; });
          t = (t + 1) % host.rt->threads();
        }
        m.EndEpoch();
        // Apply the fully reduced decrements, then reset local counters.
        host.rt->ParallelFor(0, host.LocalCount(),
                             [&](ThreadId t2, uint64_t v) {
          if (v < host.owned) {
            const uint32_t d = s.decr.Get(t2, v);
            if (d != 0) {
              s.deg.Update(t2, v, [&](uint32_t& x) {
                x = x >= d ? x - d : 0;
              });
            }
          }
          s.decr.Set(t2, v, 0);
        });
      });
    }
    CommitPhase(times, &out);
    CommitComm(bytes, &out);
  }
  if (alive != nullptr) {
    alive->assign(range_.back(), 0);
    for (uint32_t h = 0; h < nh; ++h) {
      for (uint64_t v = 0; v < hosts_[h].owned; ++v) {
        (*alive)[hosts_[h].begin + v] = st[h].alive.raw()[v];
      }
    }
  }
  out.supported = true;
  return out;
}

DistRunResult DistEngine::Bc(VertexId source, std::vector<double>* bc) {
  DistRunResult out;
  const uint32_t nh = config_.hosts;
  struct State {
    runtime::NumaArray<uint64_t> level;   // local copies
    runtime::NumaArray<double> sigma;     // local copies
    runtime::NumaArray<double> sig_acc;   // local copies, per-round
    runtime::NumaArray<double> delta;     // local copies
    runtime::NumaArray<double> bc;        // owned
    std::vector<uint8_t> mirror_dirty;
    std::vector<std::vector<uint32_t>> frontier;  // owned locals per level
  };
  std::vector<State> st(nh);
  std::vector<SimNs> times(nh, 0);
  for (uint32_t h = 0; h < nh; ++h) {
    Host& host = hosts_[h];
    State& s = st[h];
    const uint64_t lc = std::max<uint64_t>(host.LocalCount(), 1);
    s.level = runtime::NumaArray<uint64_t>(host.machine.get(), lc,
                                           HostPolicy(), "bc.level");
    s.sigma = runtime::NumaArray<double>(host.machine.get(), lc,
                                         HostPolicy(), "bc.sigma");
    s.sig_acc = runtime::NumaArray<double>(host.machine.get(), lc,
                                           HostPolicy(), "bc.sigacc");
    s.delta = runtime::NumaArray<double>(host.machine.get(), lc,
                                         HostPolicy(), "bc.delta");
    s.bc = runtime::NumaArray<double>(host.machine.get(),
                                      std::max<uint64_t>(host.owned, 1),
                                      HostPolicy(), "bc.bc");
    s.mirror_dirty.assign(host.mirror_global.size(), 0);
    times[h] = host.rt->Timed([&] {
      host.rt->ParallelFor(0, host.LocalCount(), [&](ThreadId t, uint64_t v) {
        s.level.Set(t, v, analytics::kInfDist);
        s.sigma.Set(t, v, 0.0);
        s.sig_acc.Set(t, v, 0.0);
        s.delta.Set(t, v, 0.0);
      });
      host.rt->ParallelFor(0, host.owned, [&](ThreadId t, uint64_t v) {
        s.bc.Set(t, v, 0.0);
      });
    });
  }
  CommitPhase(times, &out);

  const uint32_t src_host = HostOf(source);
  st[src_host].level.raw()[source - hosts_[src_host].begin] = 0;
  st[src_host].sigma.raw()[source - hosts_[src_host].begin] = 1.0;
  st[src_host].frontier.push_back(
      {static_cast<uint32_t>(source - hosts_[src_host].begin)});
  for (uint32_t h = 0; h < nh; ++h) {
    if (h != src_host) st[h].frontier.push_back({});
  }

  // --- Forward phase: level + sigma, one BSP round per level. ---
  uint64_t depth = 0;
  bool any = true;
  while (any) {
    any = false;
    const uint64_t round = depth;
    uint64_t bytes = 0;
    std::fill(times.begin(), times.end(), 0);
    for (uint32_t h = 0; h < nh; ++h) {
      Host& host = hosts_[h];
      State& s = st[h];
      times[h] = host.rt->Timed([&] {
        memsim::Machine& m = *host.machine;
        m.BeginEpoch(host.rt->threads());
        ThreadId t = 0;
        for (uint32_t v : s.frontier[round]) {
          const double sv = s.sigma.Get(t, v);
          host.graph->ForEachOutEdge(
              t, v, [&](ThreadId tt, VertexId u, uint32_t) {
                const uint64_t lu = s.level.Get(tt, u);
                if (lu == analytics::kInfDist || lu == round + 1) {
                  s.level.CasMin(tt, u, round + 1);
                  s.sig_acc.Update(tt, u, [&](double& x) { x += sv; });
                  if (!host.IsOwnedLocal(u)) {
                    s.mirror_dirty[u - host.owned] = 1;
                  }
                }
              });
          t = (t + 1) % host.rt->threads();
        }
        m.EndEpoch();
      });
    }
    CommitPhase(times, &out);

    // Reduce: min(level), sum(sigma accumulator) for dirty mirrors.
    struct Msg {
      uint32_t local;
      uint64_t level;
      double sig;
    };
    std::vector<std::vector<Msg>> inbox(nh);
    for (uint32_t h = 0; h < nh; ++h) {
      Host& host = hosts_[h];
      State& s = st[h];
      for (uint32_t i = 0; i < s.mirror_dirty.size(); ++i) {
        if (s.mirror_dirty[i] == 0) continue;
        s.mirror_dirty[i] = 0;
        const VertexId g = host.mirror_global[i];
        const uint32_t owner = HostOf(g);
        inbox[owner].push_back(
            {static_cast<uint32_t>(g - hosts_[owner].begin),
             s.level.raw()[host.owned + i],
             s.sig_acc.raw()[host.owned + i]});
        bytes += kMsgBytes + 8;
        // Reset the mirror-side accumulator and provisional level.
        s.sig_acc.raw()[host.owned + i] = 0.0;
        s.level.raw()[host.owned + i] = analytics::kInfDist;
      }
    }
    std::fill(times.begin(), times.end(), 0);
    for (uint32_t h = 0; h < nh; ++h) {
      Host& host = hosts_[h];
      State& s = st[h];
      times[h] = host.rt->Timed([&] {
        memsim::Machine& m = *host.machine;
        m.BeginEpoch(host.rt->threads());
        ThreadId t = 0;
        for (const Msg& msg : inbox[h]) {
          s.level.CasMin(t, msg.local, msg.level);
          s.sig_acc.Update(t, msg.local, [&](double& x) { x += msg.sig; });
          t = (t + 1) % host.rt->threads();
        }
        m.EndEpoch();
        // Commit the new frontier: owned vertices discovered this round.
        s.frontier.emplace_back();
        host.rt->ParallelFor(0, host.owned, [&](ThreadId t2, uint64_t v) {
          if (s.level.Get(t2, v) == round + 1) {
            const double acc = s.sig_acc.Get(t2, v);
            if (s.sigma.Get(t2, v) == 0.0) {
              s.sigma.Set(t2, v, acc);
              s.frontier.back().push_back(static_cast<uint32_t>(v));
            }
            s.sig_acc.Set(t2, v, 0.0);
          }
        });
      });
      if (!st[h].frontier.back().empty()) any = true;
    }
    CommitPhase(times, &out);
    CommitComm(bytes, &out);
    ++depth;
    ++out.rounds;
  }

  // --- Backward phase: one BSP round per level, deepest first. Each
  // round broadcasts (level, sigma, delta) of level-(L+1) masters to
  // their mirrors, then hosts accumulate dependencies locally. ---
  for (uint64_t level = depth; level-- > 1;) {
    // Broadcast values of vertices at `level` to mirrors.
    uint64_t bytes = 0;
    struct BMsg {
      uint32_t mirror;
      uint64_t lvl;
      double sigma;
      double delta;
    };
    std::vector<std::vector<BMsg>> bcast(nh);
    for (uint32_t h = 0; h < nh; ++h) {
      Host& host = hosts_[h];
      State& s = st[h];
      for (uint32_t v : s.frontier[level]) {
        const VertexId g = host.begin + v;
        for (uint32_t mh : mirror_hosts_[g]) {
          bcast[mh].push_back({hosts_[mh].mirror_of.at(g),
                               level, s.sigma.raw()[v], s.delta.raw()[v]});
          bytes += kMsgBytes + 16;
        }
      }
    }
    std::fill(times.begin(), times.end(), 0);
    for (uint32_t h = 0; h < nh; ++h) {
      Host& host = hosts_[h];
      State& s = st[h];
      times[h] = host.rt->Timed([&] {
        memsim::Machine& m = *host.machine;
        m.BeginEpoch(host.rt->threads());
        ThreadId t = 0;
        for (const BMsg& msg : bcast[h]) {
          s.level.Set(t, host.owned + msg.mirror, msg.lvl);
          s.sigma.Set(t, host.owned + msg.mirror, msg.sigma);
          s.delta.Set(t, host.owned + msg.mirror, msg.delta);
          t = (t + 1) % host.rt->threads();
        }
        // Dependency accumulation for the previous level.
        for (uint32_t v : s.frontier[level - 1]) {
          const double sv = s.sigma.Get(t, v);
          double acc = 0;
          host.graph->ForEachOutEdge(
              t, v, [&](ThreadId tt, VertexId u, uint32_t) {
                if (s.level.Get(tt, u) == level) {
                  acc += sv / s.sigma.Get(tt, u) *
                         (1.0 + s.delta.Get(tt, u));
                }
              });
          s.delta.Update(t, v, [&](double& x) { x += acc; });
          if (host.begin + v != source) {
            s.bc.Update(t, v, [&](double& x) { x += s.delta.Get(t, v); });
          }
          t = (t + 1) % host.rt->threads();
        }
        m.EndEpoch();
      });
    }
    CommitPhase(times, &out);
    CommitComm(bytes, &out);
    ++out.rounds;
  }
  if (bc != nullptr) {
    bc->assign(range_.back(), 0.0);
    for (uint32_t h = 0; h < nh; ++h) {
      for (uint64_t v = 0; v < hosts_[h].owned; ++v) {
        (*bc)[hosts_[h].begin + v] = st[h].bc.raw()[v];
      }
    }
  }
  out.supported = true;
  return out;
}

}  // namespace pmg::distsim
