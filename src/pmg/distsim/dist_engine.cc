#include "pmg/distsim/dist_engine.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "pmg/analytics/common.h"
#include "pmg/common/check.h"

namespace pmg::distsim {

namespace {

/// Bytes per synchronization message: vertex id + value.
constexpr uint64_t kMsgBytes = 16;

memsim::PagePolicy HostPolicy() {
  // D-Galois hosts run the Galois runtime: explicit huge pages,
  // interleaved across the host's sockets.
  // At mini scale each host's arrays are far below 2MB, so explicit
  // huge pages would round every allocation up past the scaled per-host
  // capacity; model hosts with 4KB + THP instead.
  memsim::PagePolicy p;
  p.placement = memsim::Placement::kInterleaved;
  p.page_size = memsim::PageSizeClass::k4K;
  p.thp = true;
  return p;
}

}  // namespace

DistEngine::DistEngine(const graph::CsrTopology& topo,
                       const DistConfig& config)
    : config_(config) {
  PMG_CHECK(config_.hosts >= 1);
  const uint64_t n = topo.num_vertices;
  const uint64_t m = topo.NumEdges();
  weighted_ = topo.HasWeights();

  // Outgoing edge cut: contiguous vertex ranges balanced by out-edges.
  range_.assign(config_.hosts + 1, n);
  range_[0] = 0;
  {
    uint64_t acc = 0;
    uint32_t h = 1;
    for (VertexId v = 0; v < n && h < config_.hosts; ++v) {
      acc += topo.OutDegree(v);
      if (acc * config_.hosts >= m * h) {
        range_[h] = v + 1;
        ++h;
      }
    }
    for (; h < config_.hosts; ++h) range_[h] = n;
  }

  mirror_hosts_.resize(n);
  hosts_.resize(config_.hosts);
  for (uint32_t h = 0; h < config_.hosts; ++h) {
    Host& host = hosts_[h];
    host.begin = range_[h];
    host.end = range_[h + 1];
    host.owned = host.end - host.begin;

    // Local topology: owned vertices first, then mirrors.
    graph::EdgeList local_edges;
    for (VertexId v = host.begin; v < host.end; ++v) {
      for (uint64_t e = topo.index[v]; e < topo.index[v + 1]; ++e) {
        const VertexId d = topo.dst[e];
        uint64_t local_d;
        if (d >= host.begin && d < host.end) {
          local_d = d - host.begin;
        } else {
          auto [it, inserted] = host.mirror_of.try_emplace(
              d, static_cast<uint32_t>(host.mirror_global.size()));
          if (inserted) {
            host.mirror_global.push_back(d);
            mirror_hosts_[d].push_back(h);
          }
          local_d = host.owned + it->second;
        }
        local_edges.push_back({v - host.begin, local_d,
                               weighted_ ? topo.weight[e] : 1});
      }
    }
    graph::CsrTopology local = graph::BuildCsr(
        host.owned + host.mirror_global.size(), local_edges, weighted_);
    host.graph_bytes = graph::CsrBytes(local);

    host.machine = std::make_unique<memsim::Machine>(config_.host_machine);
    host.machine->SetHostPool(memsim::HostPool::Default());
    const uint32_t threads =
        std::min(config_.threads_per_host, host.machine->MaxThreads());
    host.rt = std::make_unique<runtime::Runtime>(host.machine.get(), threads);
    graph::GraphLayout layout;
    layout.policy = HostPolicy();
    layout.with_weights = weighted_;
    host.graph = std::make_unique<graph::CsrGraph>(host.machine.get(), local,
                                                   layout, "dist.g");
    host.graph->Prefault(threads);
  }
}

uint32_t DistEngine::HostOf(VertexId v) const {
  const auto it = std::upper_bound(range_.begin(), range_.end(), v);
  return static_cast<uint32_t>(it - range_.begin()) - 1;
}

double DistEngine::CommVolumeFactor() const {
  if (config_.policy == PartitionPolicy::kCvc) {
    // 2D partitions bound each host's communication partners by the grid
    // row + column: volume scales ~ 2/sqrt(hosts) of the 1D cut.
    return std::min(1.0, 2.0 / std::sqrt(static_cast<double>(config_.hosts)));
  }
  return 1.0;
}

void DistEngine::CommitPhase(const std::vector<SimNs>& host_times,
                             DistRunResult* r) {
  SimNs mx = 0;
  for (SimNs t : host_times) mx = std::max(mx, t);
  r->compute_ns += mx;
  r->time_ns += mx;
}

void DistEngine::CommitComm(uint64_t bytes, DistRunResult* r) {
  const uint64_t scaled =
      static_cast<uint64_t>(static_cast<double>(bytes) * CommVolumeFactor());
  r->comm_bytes += scaled;
  const double per_host =
      static_cast<double>(scaled) / static_cast<double>(config_.hosts);
  const SimNs ns = config_.round_latency_ns +
                   static_cast<SimNs>(per_host / config_.network_bw_gbs);
  r->comm_ns += ns;
  r->time_ns += ns;
}

uint64_t DistEngine::MaxHostGraphBytes() const {
  uint64_t mx = 0;
  for (const Host& h : hosts_) mx = std::max(mx, h.graph_bytes);
  return mx;
}

DistRunResult DistEngine::RunMinPush(MinRelax relax, bool init_to_id,
                                     bool seed_all, VertexId seed,
                                     std::vector<uint64_t>* gathered) {
  DistRunResult out;
  const uint32_t nh = config_.hosts;
  struct State {
    runtime::NumaArray<uint64_t> label;
    runtime::NumaArray<uint8_t> cur;
    runtime::NumaArray<uint8_t> next;
    std::vector<uint8_t> mirror_dirty;
    std::vector<uint32_t> changed;  // owned locals activated this round
    uint64_t active = 0;
  };
  std::vector<State> st(nh);

  // Initialization (costed per host, excluded phase bookkeeping kept
  // simple: it is part of the measured run, as on the shared-memory side).
  std::vector<SimNs> times(nh, 0);
  for (uint32_t h = 0; h < nh; ++h) {
    Host& host = hosts_[h];
    State& s = st[h];
    s.label = runtime::NumaArray<uint64_t>(host.machine.get(),
                                           std::max<uint64_t>(
                                               host.LocalCount(), 1),
                                           HostPolicy(), "dist.label");
    s.cur = runtime::NumaArray<uint8_t>(host.machine.get(),
                                        std::max<uint64_t>(host.owned, 1),
                                        HostPolicy(), "dist.cur");
    s.next = runtime::NumaArray<uint8_t>(host.machine.get(),
                                         std::max<uint64_t>(host.owned, 1),
                                         HostPolicy(), "dist.next");
    s.mirror_dirty.assign(host.mirror_global.size(), 0);
    times[h] = host.rt->Timed([&] {
      host.rt->ParallelFor(0, host.LocalCount(), [&](ThreadId t, uint64_t v) {
        uint64_t init = analytics::kInfDist;
        if (init_to_id) {
          init = v < host.owned ? host.begin + v
                                : host.mirror_global[v - host.owned];
        }
        s.label.Set(t, v, init);
      });
      host.rt->ParallelFor(0, host.owned, [&](ThreadId t, uint64_t v) {
        s.cur.Set(t, v, seed_all ? 1 : 0);
        s.next.Set(t, v, 0);
      });
    });
    if (seed_all) s.active = host.owned;
  }
  CommitPhase(times, &out);
  if (!seed_all) {
    const uint32_t h = HostOf(seed);
    st[h].label.raw()[seed - hosts_[h].begin] = 0;
    st[h].cur.raw()[seed - hosts_[h].begin] = 1;
    st[h].active = 1;
  }

  uint64_t total_active = seed_all ? 0 : 1;
  if (seed_all) {
    for (const State& s : st) total_active += s.active;
  }

  while (total_active > 0) {
    ++out.rounds;
    // --- Compute phase: every host scans its owned frontier. ---
    std::fill(times.begin(), times.end(), 0);
    for (uint32_t h = 0; h < nh; ++h) {
      Host& host = hosts_[h];
      State& s = st[h];
      times[h] = host.rt->Timed([&] {
        memsim::Machine& m = *host.machine;
        m.BeginEpoch(host.rt->threads());
        ThreadId t = 0;
        for (uint64_t v = 0; v < host.owned; ++v) {
          if (s.cur.Get(t, v) == 0) continue;  // dense frontier scan
          const uint64_t lv = s.label.Get(t, v);
          host.graph->ForEachOutEdge(
              t, v, [&](ThreadId tt, VertexId u, uint32_t w) {
                uint64_t cand = lv;
                if (relax == MinRelax::kLevel) cand = lv + 1;
                if (relax == MinRelax::kWeight) cand = lv + w;
                if (s.label.CasMin(tt, u, cand)) {
                  if (host.IsOwnedLocal(u)) {
                    if (s.next.Get(tt, u) == 0) {
                      s.next.Set(tt, u, 1);
                      s.changed.push_back(static_cast<uint32_t>(u));
                    }
                  } else {
                    s.mirror_dirty[u - host.owned] = 1;
                  }
                }
              });
          t = (t + 1) % host.rt->threads();
        }
        // Clear the consumed frontier.
        host.rt->machine().EndEpoch();
        host.rt->ParallelFor(0, host.owned, [&](ThreadId t2, uint64_t v2) {
          s.cur.Set(t2, v2, 0);
        });
      });
    }
    CommitPhase(times, &out);

    // --- Reduce phase: dirty mirrors -> masters (min). ---
    uint64_t bytes = 0;
    std::vector<std::vector<std::pair<uint32_t, uint64_t>>> inbox(nh);
    for (uint32_t h = 0; h < nh; ++h) {
      Host& host = hosts_[h];
      State& s = st[h];
      for (uint32_t i = 0; i < s.mirror_dirty.size(); ++i) {
        if (s.mirror_dirty[i] == 0) continue;
        s.mirror_dirty[i] = 0;
        const VertexId g = host.mirror_global[i];
        const uint32_t owner = HostOf(g);
        inbox[owner].emplace_back(
            static_cast<uint32_t>(g - hosts_[owner].begin),
            s.label.raw()[host.owned + i]);
        bytes += kMsgBytes;
      }
    }
    std::fill(times.begin(), times.end(), 0);
    for (uint32_t h = 0; h < nh; ++h) {
      if (inbox[h].empty()) continue;
      Host& host = hosts_[h];
      State& s = st[h];
      times[h] = host.rt->Timed([&] {
        memsim::Machine& m = *host.machine;
        m.BeginEpoch(host.rt->threads());
        ThreadId t = 0;
        for (const auto& [local, val] : inbox[h]) {
          if (s.label.CasMin(t, local, val)) {
            if (s.next.Get(t, local) == 0) {
              s.next.Set(t, local, 1);
              s.changed.push_back(local);
            }
          }
          t = (t + 1) % host.rt->threads();
        }
        m.EndEpoch();
      });
    }
    CommitPhase(times, &out);

    // --- Broadcast phase: changed masters -> their mirrors. ---
    std::vector<std::vector<std::pair<uint32_t, uint64_t>>> bcast(nh);
    for (uint32_t h = 0; h < nh; ++h) {
      Host& host = hosts_[h];
      State& s = st[h];
      for (uint32_t local : s.changed) {
        const VertexId g = host.begin + local;
        const uint64_t val = s.label.raw()[local];
        for (uint32_t mh : mirror_hosts_[g]) {
          bcast[mh].emplace_back(hosts_[mh].mirror_of.at(g), val);
          bytes += kMsgBytes;
        }
      }
    }
    std::fill(times.begin(), times.end(), 0);
    for (uint32_t h = 0; h < nh; ++h) {
      if (bcast[h].empty()) continue;
      Host& host = hosts_[h];
      State& s = st[h];
      times[h] = host.rt->Timed([&] {
        memsim::Machine& m = *host.machine;
        m.BeginEpoch(host.rt->threads());
        ThreadId t = 0;
        for (const auto& [mirror, val] : bcast[h]) {
          s.label.Set(t, host.owned + mirror, val);
          t = (t + 1) % host.rt->threads();
        }
        m.EndEpoch();
      });
    }
    CommitPhase(times, &out);
    CommitComm(bytes, &out);

    // --- Advance frontiers. ---
    total_active = 0;
    for (uint32_t h = 0; h < nh; ++h) {
      State& s = st[h];
      total_active += s.changed.size();
      s.changed.clear();
      std::swap(s.cur, s.next);
    }
  }
  if (gathered != nullptr) {
    gathered->assign(range_.back(), analytics::kInfDist);
    for (uint32_t h = 0; h < nh; ++h) {
      for (uint64_t v = 0; v < hosts_[h].owned; ++v) {
        (*gathered)[hosts_[h].begin + v] = st[h].label.raw()[v];
      }
    }
  }
  out.supported = true;
  return out;
}

DistRunResult DistEngine::Bfs(VertexId source, std::vector<uint64_t>* levels) {
  return RunMinPush(MinRelax::kLevel, /*init_to_id=*/false,
                    /*seed_all=*/false, source, levels);
}

DistRunResult DistEngine::Cc(std::vector<uint64_t>* labels) {
  return RunMinPush(MinRelax::kCopy, /*init_to_id=*/true, /*seed_all=*/true,
                    /*seed=*/0, labels);
}

DistRunResult DistEngine::Sssp(VertexId source, std::vector<uint64_t>* dists) {
  PMG_CHECK_MSG(weighted_, "distributed sssp needs a weighted graph");
  return RunMinPush(MinRelax::kWeight, false, false, source, dists);
}

}  // namespace pmg::distsim
