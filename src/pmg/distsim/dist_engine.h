#ifndef PMG_DISTSIM_DIST_ENGINE_H_
#define PMG_DISTSIM_DIST_ENGINE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "pmg/common/types.h"
#include "pmg/graph/csr_graph.h"
#include "pmg/graph/topology.h"
#include "pmg/memsim/machine.h"
#include "pmg/runtime/numa_array.h"
#include "pmg/runtime/runtime.h"

/// \file dist_engine.h
/// A D-Galois-like distributed graph analytics simulator (Sections 6.3 and
/// Figure 11). The graph is partitioned across hosts by an outgoing edge
/// cut (OEC): each host owns a contiguous, edge-balanced vertex range plus
/// all out-edges of those vertices; remote edge endpoints become local
/// *mirror* copies. Execution is bulk-synchronous vertex programs with
/// dense per-host frontiers — the only programming model such systems
/// support, which is the paper's explanation for why a single Optane PMM
/// machine running asynchronous non-vertex Galois programs can beat a
/// 256-host cluster on bc/bfs/kcore/sssp.
///
/// Per round: every host computes on its owned frontier (costed on its own
/// DRAM machine model); dirty mirrors *reduce* to their masters; changed
/// masters *broadcast* back to mirrors. Communication is priced at
/// bytes / (per-host NIC bandwidth) + a per-round collective latency.
/// The Cartesian vertex cut (CVC) used at 256 hosts is modelled by its
/// defining property — per-host communication partners and volume scale
/// with sqrt(hosts) instead of hosts — as a volume factor on the same
/// OEC-partitioned computation.

namespace pmg::distsim {

enum class PartitionPolicy { kOec, kCvc };

struct DistConfig {
  uint32_t hosts = 5;
  uint32_t threads_per_host = 48;
  PartitionPolicy policy = PartitionPolicy::kOec;
  memsim::MachineConfig host_machine;
  /// NIC bandwidth (GB/s) and per-round collective latency.
  double network_bw_gbs = 12.5;
  SimNs round_latency_ns = 30000;
};

struct DistRunResult {
  bool supported = false;
  SimNs time_ns = 0;
  SimNs compute_ns = 0;
  SimNs comm_ns = 0;
  uint64_t rounds = 0;
  uint64_t comm_bytes = 0;
};

/// One partitioned graph + host fleet; run apps against it. Construction
/// (partitioning, local graph building) is excluded from reported times,
/// as in the paper.
class DistEngine {
 public:
  /// `topo` semantics per app mirror the shared-memory side: pass the
  /// symmetrized graph for cc/kcore, the weighted graph for sssp.
  DistEngine(const graph::CsrTopology& topo, const DistConfig& config);

  /// Each app optionally gathers its global result (indexed by global
  /// vertex id) for verification; pass nullptr to skip.
  DistRunResult Bfs(VertexId source, std::vector<uint64_t>* levels = nullptr);
  DistRunResult Cc(std::vector<uint64_t>* labels = nullptr);
  DistRunResult Sssp(VertexId source, std::vector<uint64_t>* dists = nullptr);
  DistRunResult Pr(uint32_t max_rounds, double tolerance,
                   std::vector<double>* ranks = nullptr);
  DistRunResult Kcore(uint32_t k, std::vector<uint8_t>* alive = nullptr);
  DistRunResult Bc(VertexId source, std::vector<double>* bc = nullptr);

  uint32_t hosts() const { return config_.hosts; }
  /// Peak bytes a single host materializes (graph + mirrors), for
  /// "minimum hosts that hold the graph" calculations.
  uint64_t MaxHostGraphBytes() const;

 private:
  struct Host {
    uint64_t begin = 0;   // owned global range [begin, end)
    uint64_t end = 0;
    uint64_t owned = 0;   // end - begin
    std::unique_ptr<memsim::Machine> machine;
    std::unique_ptr<runtime::Runtime> rt;
    std::unique_ptr<graph::CsrGraph> graph;  // local ids; owned first
    std::vector<VertexId> mirror_global;     // local id owned + i -> global
    std::unordered_map<VertexId, uint32_t> mirror_of;  // global -> local
    uint64_t graph_bytes = 0;

    uint64_t LocalCount() const { return owned + mirror_global.size(); }
    bool IsOwnedLocal(uint64_t local) const { return local < owned; }
  };

  uint32_t HostOf(VertexId v) const;
  /// Shared engine for the min-reduction push apps (bfs, cc, sssp).
  /// Candidate label: bfs -> label+1, sssp -> label+w, cc -> label.
  enum class MinRelax { kLevel, kWeight, kCopy };
  DistRunResult RunMinPush(MinRelax relax, bool init_to_id, bool seed_all,
                           VertexId seed, std::vector<uint64_t>* gathered);
  /// Scales raw reduce/broadcast volume for the partition policy.
  double CommVolumeFactor() const;
  /// Advances the global clock by one synchronized phase: max over the
  /// per-host durations.
  void CommitPhase(const std::vector<SimNs>& host_times, DistRunResult* r);
  void CommitComm(uint64_t bytes, DistRunResult* r);

  DistConfig config_;
  std::vector<uint64_t> range_;  // size hosts+1
  std::vector<Host> hosts_;
  /// For each global vertex: hosts holding it as a mirror.
  std::vector<std::vector<uint32_t>> mirror_hosts_;
  bool weighted_ = false;
};

}  // namespace pmg::distsim

#endif  // PMG_DISTSIM_DIST_ENGINE_H_
