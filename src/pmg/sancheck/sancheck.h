#ifndef PMG_SANCHECK_SANCHECK_H_
#define PMG_SANCHECK_SANCHECK_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include "pmg/common/types.h"
#include "pmg/memsim/access_observer.h"
#include "pmg/memsim/machine.h"

/// \file sancheck.h
/// `pmg::sancheck` — a sanitizer for the *simulated* machine, attached to
/// the `memsim::Machine` access path through the AccessObserver seam. Two
/// analyses run on every costed access:
///
///   1. An **epoch race detector**: the runtime interleaves virtual threads
///      deterministically, so two conflicting accesses that land in the
///      same machine epoch would run concurrently on real hardware. The
///      detector keeps a per-epoch shadow map at cache-line granularity; a
///      line with a plain (non-atomic) write from one virtual thread and a
///      plain conflicting access from another, with byte-true overlap, is a
///      data race — exactly the happens-before-free window ThreadSanitizer
///      would flag in the real parallel program the operator models.
///      Accesses marked atomic (AccessType::kAtomic*) are synchronization
///      and never race.
///   2. A **shadow bounds/lifetime checker**: a shadow copy of the
///      live-region table validates every access byte-exactly. Accesses
///      past a region's size (the page table rounds regions up to pages,
///      so the machine itself cannot see these), accesses to a freed
///      region (use-after-free — invisible to the machine when the line
///      still sits in a CPU cache), and accesses to never-allocated
///      addresses abort with a region-map dump.
///
/// The layer is strictly opt-in: a machine with no observer attached pays
/// one predictable null-check per access and nothing else.

namespace pmg::sancheck {

struct SancheckOptions {
  /// Validate every access against the shadow region table (aborts on
  /// violation — these are host-program bugs, not simulated-program bugs).
  bool check_bounds = true;
  /// Run the epoch race detector.
  bool detect_races = true;
  /// Abort on the first race instead of collecting reports.
  bool abort_on_race = false;
  /// Keep at most this many detailed race reports (all races are counted).
  uint32_t max_reports = 64;
};

/// One detected data race (a pair of conflicting plain accesses by two
/// virtual threads inside one epoch).
struct RaceReport {
  std::string region;     ///< name of the region holding the line
  uint64_t offset = 0;    ///< byte offset of the line within the region
  VirtAddr line_addr = 0; ///< virtual address of the cache line
  uint64_t epoch = 0;     ///< epoch index (counting from attach)
  ThreadId first_thread = 0;
  ThreadId second_thread = 0;
  AccessType first_type = AccessType::kRead;
  AccessType second_type = AccessType::kWrite;

  std::string ToString() const;
};

/// Aggregate result of a sanitized run.
struct SancheckSummary {
  uint64_t checked_accesses = 0;
  uint64_t checked_epochs = 0;
  uint64_t races = 0;
  uint64_t race_epochs = 0;
  /// First `SancheckOptions::max_reports` races in detail; `races` minus
  /// `reports.size()` reports were dropped.
  std::vector<RaceReport> reports;

  std::string ToString() const;
};

class Sancheck : public memsim::AccessObserver {
 public:
  explicit Sancheck(const SancheckOptions& options = SancheckOptions());

  Sancheck(const Sancheck&) = delete;
  Sancheck& operator=(const Sancheck&) = delete;

  /// Convenience wrappers around the machine's observer chain.
  void Attach(memsim::Machine* machine) { machine->AddObserver(this); }
  void Detach(memsim::Machine* machine) { machine->RemoveObserver(this); }

  // AccessObserver:
  void OnAlloc(memsim::RegionId id, VirtAddr base, uint64_t bytes,
               std::string_view name) override;
  void OnFree(memsim::RegionId id) override;
  void OnAccess(ThreadId t, VirtAddr addr, uint32_t bytes,
                AccessType type) override;
  void OnEpochBegin(uint32_t active_threads) override;
  uint64_t OnEpochEnd() override;

  const SancheckSummary& summary() const { return summary_; }

 private:
  /// Shadow of one (live or freed) region. Region bases come from a bump
  /// allocator, so address ranges never overlap and freed extents stay
  /// valid tombstones for use-after-free diagnosis.
  struct ShadowRegion {
    memsim::RegionId id = 0;
    VirtAddr base = 0;
    uint64_t bytes = 0;
    std::string name;
    bool live = false;
  };

  /// Per-(line, thread) byte masks of the current epoch. Bit i covers the
  /// line's byte i; conflicts are tested by mask intersection, so two
  /// threads sharing a line without sharing bytes (adjacent blocked
  /// partitions) never produce a false positive.
  struct ThreadMasks {
    ThreadId thread = 0;
    uint64_t plain_read = 0;
    uint64_t plain_write = 0;
    uint64_t atomic = 0;
  };

  struct LineState {
    /// One entry per virtual thread that touched the line this epoch
    /// (almost always one or two).
    std::vector<ThreadMasks> threads;
    bool reported = false;
  };

  /// Index into shadow_ of the region containing addr, or -1.
  int64_t FindShadow(VirtAddr addr) const;
  void CheckBounds(ThreadId t, VirtAddr addr, uint32_t bytes,
                   AccessType type) const;
  [[noreturn]] void BoundsAbort(const char* what, ThreadId t, VirtAddr addr,
                                uint32_t bytes, AccessType type,
                                const ShadowRegion* region) const;
  void TrackRace(ThreadId t, VirtAddr addr, uint32_t bytes, AccessType type);
  void RecordRace(VirtAddr line_addr, const ThreadMasks& prior,
                  ThreadId thread, AccessType type);
  void DumpRegionMap(std::FILE* out) const;

  SancheckOptions options_;
  /// Sorted by base (bump allocation appends in order); includes
  /// tombstones of freed regions.
  std::vector<ShadowRegion> shadow_;
  std::unordered_map<uint64_t, LineState> lines_;  // keyed by line index
  uint32_t active_threads_ = 1;
  uint64_t epoch_races_ = 0;
  SancheckSummary summary_;
};

}  // namespace pmg::sancheck

#endif  // PMG_SANCHECK_SANCHECK_H_
