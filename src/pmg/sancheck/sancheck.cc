#include "pmg/sancheck/sancheck.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "pmg/common/check.h"
#include "pmg/memsim/cpu_cache.h"

namespace pmg::sancheck {
namespace {

/// Byte mask of [lo, hi) within one cache line (bit i = byte i).
uint64_t LineMask(uint64_t lo, uint64_t hi) {
  const uint64_t width = hi - lo;
  const uint64_t bits = width >= 64 ? ~0ull : ((1ull << width) - 1);
  return bits << lo;
}

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  *out += buf;
}

}  // namespace

std::string RaceReport::ToString() const {
  std::string out;
  AppendF(&out,
          "data race in epoch %" PRIu64 ": region '%s' +%" PRIu64
          " (line 0x%" PRIx64 "): %s by thread %u vs %s by thread %u",
          epoch, region.c_str(), offset, line_addr,
          AccessTypeName(first_type), first_thread,
          AccessTypeName(second_type), second_thread);
  return out;
}

std::string SancheckSummary::ToString() const {
  std::string out;
  AppendF(&out,
          "sancheck: %" PRIu64 " access(es) checked over %" PRIu64
          " epoch(s); %" PRIu64 " race(s) in %" PRIu64 " epoch(s)",
          checked_accesses, checked_epochs, races, race_epochs);
  for (const RaceReport& r : reports) {
    out += "\n  ";
    out += r.ToString();
  }
  const uint64_t dropped = races - static_cast<uint64_t>(reports.size());
  if (dropped > 0) {
    AppendF(&out, "\n  ... %" PRIu64 " further race(s) not shown", dropped);
  }
  return out;
}

Sancheck::Sancheck(const SancheckOptions& options) : options_(options) {}

void Sancheck::OnAlloc(memsim::RegionId id, VirtAddr base, uint64_t bytes,
                       std::string_view name) {
  // The page table's bump allocator hands out strictly increasing bases,
  // so appending keeps shadow_ sorted; check rather than assume.
  PMG_CHECK_MSG(shadow_.empty() || base >= shadow_.back().base +
                                               shadow_.back().bytes,
                "region bases must be monotone for the shadow table");
  ShadowRegion r;
  r.id = id;
  r.base = base;
  r.bytes = bytes;
  r.name.assign(name.data(), name.size());
  r.live = true;
  shadow_.push_back(std::move(r));
}

void Sancheck::OnFree(memsim::RegionId id) {
  for (ShadowRegion& r : shadow_) {
    if (r.id == id) {
      PMG_CHECK_MSG(r.live, "double free of region '%s' (id %u)",
                    r.name.c_str(), id);
      r.live = false;  // keep as a tombstone for use-after-free diagnosis
      return;
    }
  }
  PMG_CHECK_MSG(false, "free of unknown region id %u", id);
}

int64_t Sancheck::FindShadow(VirtAddr addr) const {
  // Last region with base <= addr (shadow_ is sorted by base).
  auto it = std::upper_bound(
      shadow_.begin(), shadow_.end(), addr,
      [](VirtAddr a, const ShadowRegion& r) { return a < r.base; });
  if (it == shadow_.begin()) return -1;
  return static_cast<int64_t>(std::distance(shadow_.begin(), it) - 1);
}

void Sancheck::DumpRegionMap(std::FILE* out) const {
  std::fprintf(out, "sancheck region map (%zu region(s)):\n", shadow_.size());
  for (const ShadowRegion& r : shadow_) {
    std::fprintf(out,
                 "  [0x%" PRIx64 ", 0x%" PRIx64 ") %10" PRIu64
                 " bytes  %-5s '%s'\n",
                 r.base, r.base + r.bytes, r.bytes,
                 r.live ? "live" : "FREED", r.name.c_str());
  }
}

void Sancheck::BoundsAbort(const char* what, ThreadId t, VirtAddr addr,
                           uint32_t bytes, AccessType type,
                           const ShadowRegion* region) const {
  std::fprintf(stderr,
               "sancheck: %s: %s of %u byte(s) at 0x%" PRIx64
               " by thread %u\n",
               what, AccessTypeName(type), bytes, addr, t);
  if (region != nullptr) {
    std::fprintf(stderr, "  nearest region: '%s' [0x%" PRIx64 ", 0x%" PRIx64
                         ") (%s)\n",
                 region->name.c_str(), region->base,
                 region->base + region->bytes,
                 region->live ? "live" : "freed");
  }
  DumpRegionMap(stderr);
  PMG_CHECK_MSG(false, "sancheck bounds violation (%s)", what);
}

void Sancheck::CheckBounds(ThreadId t, VirtAddr addr, uint32_t bytes,
                           AccessType type) const {
  const int64_t idx = FindShadow(addr);
  if (idx < 0) {
    BoundsAbort("wild access (never-allocated address)", t, addr, bytes,
                type, nullptr);
  }
  const ShadowRegion& r = shadow_[static_cast<size_t>(idx)];
  if (addr + bytes > r.base + r.bytes) {
    // Past the end of the nearest region: either an overflow off a live
    // region or a stray pointer into the allocator's guard gap.
    BoundsAbort(addr < r.base + r.bytes
                    ? "out-of-bounds access (straddles region end)"
                    : "out-of-bounds access (past region end)",
                t, addr, bytes, type, &r);
  }
  if (!r.live) {
    BoundsAbort("use-after-free access", t, addr, bytes, type, &r);
  }
}

void Sancheck::RecordRace(VirtAddr line_addr, const ThreadMasks& prior,
                          ThreadId thread, AccessType type) {
  ++epoch_races_;
  ++summary_.races;
  RaceReport report;
  report.line_addr = line_addr;
  report.epoch = summary_.checked_epochs;  // current epoch's index
  report.first_thread = prior.thread;
  // Report the prior thread's strongest involvement: a write if it wrote.
  report.first_type =
      prior.plain_write != 0 ? AccessType::kWrite : AccessType::kRead;
  report.second_thread = thread;
  report.second_type = type;
  const int64_t idx = FindShadow(line_addr);
  if (idx >= 0) {
    const ShadowRegion& r = shadow_[static_cast<size_t>(idx)];
    report.region = r.name;
    report.offset = line_addr - r.base;
  } else {
    report.region = "<unknown>";
    report.offset = 0;
  }
  if (options_.abort_on_race) {
    std::fprintf(stderr, "sancheck: %s\n", report.ToString().c_str());
    PMG_CHECK_MSG(false, "sancheck data race (abort_on_race)");
  }
  if (summary_.reports.size() < options_.max_reports) {
    summary_.reports.push_back(std::move(report));
  }
}

void Sancheck::TrackRace(ThreadId t, VirtAddr addr, uint32_t bytes,
                         AccessType type) {
  const bool atomic = IsAtomic(type);
  const uint64_t first_line = addr / memsim::kCacheLineBytes;
  const uint64_t last_line = (addr + bytes - 1) / memsim::kCacheLineBytes;
  for (uint64_t line = first_line; line <= last_line; ++line) {
    const VirtAddr line_base = line * memsim::kCacheLineBytes;
    const uint64_t lo = std::max<VirtAddr>(addr, line_base) - line_base;
    const uint64_t hi =
        std::min<VirtAddr>(addr + bytes, line_base + memsim::kCacheLineBytes) -
        line_base;
    const uint64_t mask = LineMask(lo, hi);

    LineState& state = lines_[line];
    ThreadMasks* mine = nullptr;
    for (ThreadMasks& m : state.threads) {
      if (m.thread == t) {
        mine = &m;
        continue;
      }
      if (state.reported || atomic) continue;
      // Conflict: my plain access overlaps the other thread's plain bytes,
      // and at least one side wrote. Atomic bytes never conflict.
      const uint64_t other_plain = m.plain_read | m.plain_write;
      const bool conflict =
          IsWrite(type) ? (mask & other_plain) != 0
                        : (mask & m.plain_write) != 0;
      if (conflict) {
        state.reported = true;  // one report per line per epoch
        RecordRace(line_base, m, t, type);
      }
    }
    if (mine == nullptr) {
      state.threads.push_back(ThreadMasks{t, 0, 0, 0});
      mine = &state.threads.back();
    }
    if (atomic) {
      mine->atomic |= mask;
    } else {
      if (IsRead(type)) mine->plain_read |= mask;
      if (IsWrite(type)) mine->plain_write |= mask;
    }
  }
}

void Sancheck::OnAccess(ThreadId t, VirtAddr addr, uint32_t bytes,
                        AccessType type) {
  ++summary_.checked_accesses;
  if (options_.check_bounds) CheckBounds(t, addr, bytes, type);
  // Single-threaded epochs (and the implicit epochs of stray accesses)
  // cannot race; skip the shadow map entirely.
  if (options_.detect_races && active_threads_ > 1) {
    TrackRace(t, addr, bytes, type);
  }
}

void Sancheck::OnEpochBegin(uint32_t active_threads) {
  active_threads_ = active_threads;
  epoch_races_ = 0;
  lines_.clear();
}

uint64_t Sancheck::OnEpochEnd() {
  ++summary_.checked_epochs;
  if (epoch_races_ > 0) ++summary_.race_epochs;
  const uint64_t races = epoch_races_;
  epoch_races_ = 0;
  lines_.clear();
  active_threads_ = 1;
  return races;
}

}  // namespace pmg::sancheck
