#include "pmg/serve/workload.h"

#include <charconv>
#include <cmath>
#include <cstdlib>

#include "pmg/common/check.h"

namespace pmg::serve {

namespace {

bool ParseU64Str(std::string_view s, uint64_t* out) {
  if (s.empty()) return false;
  uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) return false;
  *out = v;
  return true;
}

bool ParseU32Str(std::string_view s, uint32_t* out) {
  uint64_t v = 0;
  if (!ParseU64Str(s, &v) || v > ~0u) return false;
  *out = static_cast<uint32_t>(v);
  return true;
}

bool ParseDoubleStr(std::string_view s, double* out) {
  if (s.empty()) return false;
  // strtod needs a terminated buffer; specs are short so a copy is fine.
  const std::string buf(s);
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

bool Fail(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
  return false;
}

/// "bfs:40/sssp:20/pr:20/ego:20" -> mix percentages (missing kinds = 0).
bool ParseMix(std::string_view s, uint32_t mix[kQueryKindCount],
              std::string* error) {
  for (size_t k = 0; k < kQueryKindCount; ++k) mix[k] = 0;
  size_t pos = 0;
  while (pos < s.size()) {
    size_t slash = s.find('/', pos);
    if (slash == std::string_view::npos) slash = s.size();
    const std::string_view part = s.substr(pos, slash - pos);
    const size_t colon = part.find(':');
    if (colon == std::string_view::npos) {
      return Fail(error, "mix entry '" + std::string(part) +
                             "' wants kind:percent");
    }
    const std::string_view name = part.substr(0, colon);
    uint32_t pct = 0;
    if (!ParseU32Str(part.substr(colon + 1), &pct)) {
      return Fail(error, "bad mix percentage in '" + std::string(part) + "'");
    }
    size_t kind = kQueryKindCount;
    if (name == "bfs") kind = static_cast<size_t>(QueryKind::kBfs);
    else if (name == "sssp") kind = static_cast<size_t>(QueryKind::kSssp);
    else if (name == "pr") kind = static_cast<size_t>(QueryKind::kPrTopK);
    else if (name == "ego") kind = static_cast<size_t>(QueryKind::kEgoNet);
    else {
      return Fail(error, "unknown query kind '" + std::string(name) +
                             "' (want bfs|sssp|pr|ego)");
    }
    mix[kind] += pct;
    pos = slash + 1;
  }
  uint32_t sum = 0;
  for (size_t k = 0; k < kQueryKindCount; ++k) sum += mix[k];
  if (sum != 100) {
    return Fail(error,
                "mix percentages sum to " + std::to_string(sum) +
                    ", want 100");
  }
  return true;
}

}  // namespace

uint64_t ServeMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

double ServeUniform(uint64_t x) {
  // 53 high bits -> (0, 1]: the 1-u flip keeps log(u) finite.
  const double u = static_cast<double>(ServeMix64(x) >> 11) *
                   (1.0 / 9007199254740992.0);
  return 1.0 - u;
}

std::vector<std::string> ServePresetNames() {
  return {"canonical", "steady", "nightly"};
}

std::string ServePresetSpec(std::string_view name) {
  // The canonical burst+fault acceptance scenario's workload: a 6x burst
  // for a quarter of each period over a baseline the server sustains at
  // full fidelity. The burst rate exceeds full-fidelity capacity on the
  // acceptance graph but sits near the *degraded* capacity, so the robust
  // server rides it out with truncated pagerank + radius-capped ego-nets
  // while the naive baseline's unbounded queue never recovers.
  if (name == "canonical") {
    return "burst:qps=8000,x=6,duty=25,period=10000000,n=300,"
           "deadline=4000000,mix=bfs:20/sssp:10/pr:30/ego:40,radius=3,"
           "seed=42";
  }
  if (name == "steady") {
    return "poisson:qps=600,n=200,deadline=5000000,"
           "mix=bfs:40/sssp:20/pr:20/ego:20,seed=7";
  }
  if (name == "nightly") {
    return "diurnal:qps=900,amp=80,period=50000000,n=300,deadline=5000000,"
           "mix=bfs:30/sssp:20/pr:30/ego:20,seed=11";
  }
  return "";
}

bool WorkloadSpec::Parse(std::string_view spec, WorkloadSpec* out,
                         std::string* error) {
  const size_t head = spec.find(':');
  if (head == std::string_view::npos) {
    const std::string expanded = ServePresetSpec(spec);
    if (expanded.empty()) {
      return Fail(error, "unknown workload preset '" + std::string(spec) +
                             "' (want canonical|steady|nightly or "
                             "poisson|burst|diurnal:key=value,...)");
    }
    return Parse(expanded, out, error);
  }
  WorkloadSpec w;
  const std::string_view kind = spec.substr(0, head);
  if (kind == "poisson") w.arrival = ArrivalKind::kPoisson;
  else if (kind == "burst") w.arrival = ArrivalKind::kBurst;
  else if (kind == "diurnal") w.arrival = ArrivalKind::kDiurnal;
  else {
    return Fail(error, "unknown arrival kind '" + std::string(kind) +
                           "' (want poisson|burst|diurnal)");
  }
  size_t pos = head + 1;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    const std::string_view part = spec.substr(pos, comma - pos);
    const size_t eq = part.find('=');
    if (eq == std::string_view::npos) {
      return Fail(error,
                  "workload entry '" + std::string(part) + "' wants key=value");
    }
    const std::string_view key = part.substr(0, eq);
    const std::string_view value = part.substr(eq + 1);
    bool ok = true;
    if (key == "qps") ok = ParseDoubleStr(value, &w.qps);
    else if (key == "n") ok = ParseU64Str(value, &w.requests);
    else if (key == "deadline") ok = ParseU64Str(value, &w.deadline_ns);
    else if (key == "mix") {
      if (!ParseMix(value, w.mix, error)) return false;
    } else if (key == "seed") ok = ParseU64Str(value, &w.seed);
    else if (key == "period") ok = ParseU64Str(value, &w.period_ns);
    else if (key == "duty") ok = ParseU32Str(value, &w.duty_pct);
    else if (key == "x") ok = ParseDoubleStr(value, &w.burst_x);
    else if (key == "amp") ok = ParseU32Str(value, &w.amp_pct);
    else if (key == "topk") ok = ParseU32Str(value, &w.topk);
    else if (key == "radius") ok = ParseU32Str(value, &w.radius);
    else {
      return Fail(error, "unknown workload key '" + std::string(key) + "'");
    }
    if (!ok) {
      return Fail(error,
                  "bad value for workload key '" + std::string(key) + "'");
    }
    pos = comma + 1;
  }
  if (!(w.qps > 0)) return Fail(error, "workload wants qps > 0");
  if (w.requests == 0) return Fail(error, "workload wants n > 0");
  if (w.deadline_ns == 0) return Fail(error, "workload wants deadline > 0");
  if (w.period_ns == 0) return Fail(error, "workload wants period > 0");
  if (w.duty_pct == 0 || w.duty_pct >= 100) {
    return Fail(error, "workload wants 0 < duty < 100");
  }
  if (!(w.burst_x >= 1.0)) return Fail(error, "workload wants x >= 1");
  if (w.amp_pct > 100) return Fail(error, "workload wants amp <= 100");
  if (w.topk == 0) return Fail(error, "workload wants topk > 0");
  if (w.radius == 0) return Fail(error, "workload wants radius > 0");
  *out = w;
  return true;
}

double WorkloadSpec::RateAt(SimNs t_ns) const {
  switch (arrival) {
    case ArrivalKind::kPoisson:
      return qps;
    case ArrivalKind::kBurst: {
      const SimNs phase = t_ns % period_ns;
      const SimNs window = period_ns * duty_pct / 100;
      return phase < window ? qps * burst_x : qps;
    }
    case ArrivalKind::kDiurnal: {
      // Triangle wave in [-1, 1]: exact in doubles for integer phases, so
      // the generated trace is bit-stable across compilers (no libm sin).
      const SimNs phase = t_ns % period_ns;
      const double x = static_cast<double>(phase) /
                       static_cast<double>(period_ns);
      const double tri = 1.0 - 4.0 * std::fabs(x - 0.5);
      return qps * (1.0 + static_cast<double>(amp_pct) / 100.0 * tri);
    }
  }
  return qps;
}

double WorkloadSpec::PeakRate() const {
  switch (arrival) {
    case ArrivalKind::kPoisson:
      return qps;
    case ArrivalKind::kBurst:
      return qps * burst_x;
    case ArrivalKind::kDiurnal:
      return qps * (1.0 + static_cast<double>(amp_pct) / 100.0);
  }
  return qps;
}

std::vector<Request> GenerateArrivals(const WorkloadSpec& spec,
                                      uint64_t num_vertices) {
  PMG_CHECK(num_vertices > 0);
  std::vector<Request> out;
  out.reserve(spec.requests);
  const double peak = spec.PeakRate();
  PMG_CHECK(peak > 0);
  uint64_t draw = 0;
  auto next_u64 = [&]() { return ServeMix64(spec.seed + 0x632be59bd9b4e019ull *
                                                            ++draw); };
  double t_sec = 0;
  while (out.size() < spec.requests) {
    // Homogeneous arrivals at the peak rate, thinned down to RateAt —
    // the standard nonhomogeneous-Poisson construction, fully seeded.
    t_sec += -std::log(ServeUniform(next_u64())) / peak;
    const SimNs t_ns = static_cast<SimNs>(t_sec * 1e9);
    const double keep = static_cast<double>(next_u64() >> 11) *
                        (1.0 / 9007199254740992.0);
    if (keep * peak >= spec.RateAt(t_ns)) continue;
    Request r;
    r.id = out.size();
    const uint32_t pick = static_cast<uint32_t>(next_u64() % 100);
    uint32_t acc = 0;
    r.kind = QueryKind::kEgoNet;
    for (size_t k = 0; k < kQueryKindCount; ++k) {
      acc += spec.mix[k];
      if (pick < acc) {
        r.kind = static_cast<QueryKind>(k);
        break;
      }
    }
    r.source = next_u64() % num_vertices;
    r.topk = spec.topk;
    r.radius = spec.radius;
    r.arrival_ns = t_ns;
    r.deadline_ns = spec.deadline_ns;
    out.push_back(r);
  }
  return out;
}

}  // namespace pmg::serve
