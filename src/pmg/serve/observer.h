#ifndef PMG_SERVE_OBSERVER_H_
#define PMG_SERVE_OBSERVER_H_

#include <cstdint>
#include <vector>

#include "pmg/serve/request.h"

/// \file observer.h
/// The request-timeline observer seam of pmg::serve. The Server narrates
/// every state transition a request goes through — enqueue, dispatch,
/// attempt end, retry backoff, recovery stall, terminal — as it happens on
/// the simulated serve clock, and an attached ServeObserver (pmg::servetrace
/// is the in-tree implementation) turns that narration into span timelines.
///
/// Contract, mirroring the Machine observer seams:
///   - zero-cost when detached: every call site is null-guarded and the
///     Server computes nothing observer-only ahead of the guard;
///   - pure narration: observers must not feed anything back into serving
///     decisions, and no simulated number may depend on one being attached
///     (the serve report is byte-identical either way — asserted by
///     bench_serve_trace);
///   - hooks fire in simulated-time order for any single request, and the
///     timestamps handed over are exact event times on the serve clock, so
///     an observer can rebuild a gap-free span timeline per request
///     (arrival -> queue -> attempts -> backoff/recovery -> terminal).

namespace pmg::serve {

class ServeObserver {
 public:
  /// Why an execution attempt stopped billing.
  enum class ExecEnd : uint8_t {
    kAnswered = 0,  ///< Produced a result (full or degraded fidelity).
    kDeadline,      ///< Priced timeout at a round boundary.
    kHedge,         ///< Straggler abandoned for an immediate degraded re-run.
    kCrash,         ///< Simulated crash killed the machine mid-attempt.
  };

  virtual ~ServeObserver() = default;

  /// Serving starts: the full arrival trace, indexed by request index
  /// (== request id). Fires once, before any other hook.
  virtual void OnRun(const std::vector<Request>& arrivals) = 0;

  /// A request (attempt `attempt`, 1-based) enters admission at
  /// `at_ns` — its arrival time for first attempts, its backoff-eligible
  /// time for retries. Fires before the admission decision, so a
  /// same-timestamp OnShed may immediately follow.
  virtual void OnEnqueue(uint64_t req_index, uint32_t attempt,
                         SimNs at_ns) = 0;

  /// Admission (or the deadline-aware dispatch drop) shed the request.
  /// Terminal.
  virtual void OnShed(uint64_t req_index, ShedReason reason, SimNs at_ns) = 0;

  /// The worker starts executing attempt `attempt` at `at_ns`. A hedge
  /// re-run re-dispatches at the exact end of the abandoned straggler with
  /// `hedge_rerun` set (and always degraded).
  virtual void OnDispatch(uint64_t req_index, uint32_t attempt, bool degraded,
                          bool hedge_rerun, SimNs at_ns) = 0;

  /// The attempt started by the matching OnDispatch stopped billing at
  /// `at_ns` (== dispatch time + machine time billed to the attempt).
  virtual void OnExecEnd(uint64_t req_index, ExecEnd why, SimNs at_ns) = 0;

  /// A retry was scheduled at `from_ns`; the request sits in backoff until
  /// its eligible time (handed to the next OnEnqueue).
  virtual void OnBackoff(uint64_t req_index, SimNs from_ns) = 0;

  /// Crash recovery stalled the in-flight request from `from_ns` (the
  /// crash) to `to_ns` (machine rebuilt — or the give-up point when the
  /// server exhausted max_recoveries and OnAbandon follows).
  virtual void OnRecovery(uint64_t req_index, SimNs from_ns, SimNs to_ns) = 0;

  /// Terminal: the request was answered or exhausted its budget at
  /// `at_ns` (== the matching OnExecEnd's timestamp).
  virtual void OnFinish(uint64_t req_index, Outcome outcome,
                        bool missed_deadline, SimNs at_ns) = 0;

  /// Terminal without an answer: the server gave up (max_recoveries) with
  /// this request queued, backing off, or not yet arrived.
  virtual void OnAbandon(uint64_t req_index, SimNs at_ns) = 0;
};

}  // namespace pmg::serve

#endif  // PMG_SERVE_OBSERVER_H_
