#ifndef PMG_SERVE_POLICY_H_
#define PMG_SERVE_POLICY_H_

#include <cstdint>

#include "pmg/common/types.h"
#include "pmg/serve/workload.h"

/// \file policy.h
/// The robustness policies of the serving layer. Every decision these
/// configs drive — shed, retry, hedge, degrade — is a pure function of
/// simulated time plus seeded draws, never of host state: two servers fed
/// the same trace and fault schedule make byte-identical decisions.

namespace pmg::serve {

/// What a bounded admission queue does when it is full.
enum class ShedPolicy : uint8_t {
  kRejectNewest = 0,  ///< Classic bounded queue: drop the arrival.
  kDropOldest,        ///< Evict the head (freshest-work-first under burst).
  kDeadlineAware,     ///< Evict whichever queued/incoming request has the
                      ///< least deadline slack, and drop first attempts
                      ///< whose deadline already passed at dispatch.
};

constexpr const char* ShedPolicyName(ShedPolicy p) {
  switch (p) {
    case ShedPolicy::kRejectNewest:
      return "reject";
    case ShedPolicy::kDropOldest:
      return "oldest-drop";
    case ShedPolicy::kDeadlineAware:
      return "deadline-aware";
  }
  return "?";
}

struct AdmissionConfig {
  /// Queue capacity; 0 = unbounded (the naive baseline — nothing sheds).
  uint64_t queue_capacity = 32;
  ShedPolicy policy = ShedPolicy::kDeadlineAware;
};

/// Timeout/retry pricing. A timed-out attempt's work is still billed (the
/// priced-timeout contract); the retry re-enters the queue after an
/// exponential backoff with seeded jitter, and runs degraded.
struct RetryConfig {
  /// Total executions allowed per request, the first attempt included.
  /// 1 = never retry (the naive baseline).
  uint32_t max_attempts = 3;
  /// Backoff before retry r (1-based) is base * 2^(r-1), jittered.
  SimNs backoff_base_ns = 200'000;
  /// Jitter range in percent: the drawn backoff is uniform in
  /// [backoff * (100-j)/100, backoff * (100+j)/100].
  uint32_t jitter_pct = 20;
  uint64_t seed = 1;

  /// The deterministic backoff before retry `retry_index` (1-based) of
  /// request `request_id`. Pure in (config, id, index).
  SimNs BackoffNs(uint64_t request_id, uint32_t retry_index) const {
    SimNs base = backoff_base_ns;
    for (uint32_t r = 1; r < retry_index; ++r) base *= 2;
    if (jitter_pct == 0) return base;
    const uint64_t draw = ServeMix64(
        seed ^ (request_id * 0x2545f4914f6cdd1dull + retry_index));
    const uint64_t span = 2 * jitter_pct + 1;
    const int64_t offset_pct =
        static_cast<int64_t>(draw % span) - jitter_pct;
    const int64_t jittered =
        static_cast<int64_t>(base) +
        static_cast<int64_t>(base) * offset_pct / 100;
    return jittered > 0 ? static_cast<SimNs>(jittered) : 1;
  }
};

/// Straggler hedging: when a first attempt has consumed more than
/// `hedge_after_ns` of machine time without finishing, abort it at the
/// next round boundary and immediately re-run degraded. The aborted work
/// stays billed — hedges trade wasted work for tail latency.
struct HedgeConfig {
  bool enabled = true;
  SimNs hedge_after_ns = 3'000'000;
};

/// Graceful degradation: under queue pressure or recent fault activity the
/// server answers approximately — truncated pagerank, depth-capped
/// ego-nets — instead of queueing full-fidelity work it cannot afford.
struct DegradeConfig {
  bool enabled = true;
  /// Enter degraded mode when the queue reaches `queue_high`; leave it
  /// when the queue drains to `queue_low` (hysteresis).
  uint64_t queue_high = 16;
  uint64_t queue_low = 4;
  /// Stay degraded this long after observed fault activity (transient
  /// stalls, degraded-link epochs, crashes).
  SimNs fault_hold_ns = 2'000'000;
  /// Degraded pagerank runs this many rounds.
  uint32_t pr_rounds = 3;
  /// Degraded ego-nets cap the radius here.
  uint32_t ego_radius = 1;
};

}  // namespace pmg::serve

#endif  // PMG_SERVE_POLICY_H_
