#ifndef PMG_SERVE_SERVER_H_
#define PMG_SERVE_SERVER_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "pmg/analytics/common.h"
#include "pmg/faultsim/fault_injector.h"
#include "pmg/faultsim/fault_schedule.h"
#include "pmg/graph/csr_graph.h"
#include "pmg/graph/topology.h"
#include "pmg/memsim/machine.h"
#include "pmg/metrics/registry.h"
#include "pmg/runtime/runtime.h"
#include "pmg/serve/observer.h"
#include "pmg/serve/policy.h"
#include "pmg/serve/request.h"
#include "pmg/serve/workload.h"
#include "pmg/trace/json.h"

/// \file server.h
/// pmg::serve — overload-robust graph-query serving on the simulated
/// machine. The Server holds a resident CsrGraph and drains an open-loop
/// arrival trace through a discrete-event loop on *simulated* time:
///
///   - one logical worker executes admitted queries FIFO, each query
///     running round-by-round on the machine with `threads` virtual
///     threads (the batch kernels' execution model);
///   - between events the server is idle and the serve clock skips ahead
///     (open-loop: arrivals do not wait for the server);
///   - at every round boundary the robustness policies run: priced
///     deadline timeout, straggler hedging, and degradation checks;
///   - a bounded admission queue sheds load per ShedPolicy;
///   - an attached faultsim schedule injects stalls/quarantines/degraded
///     links/crashes; a crash kills the machine mid-query, the server
///     rebuilds it (graph reload priced as recovery time) and retries the
///     in-flight request.
///
/// Determinism is the core invariant: identical (workload seed, fault
/// schedule, config) yield byte-identical ServeReports — every shed,
/// retry, hedge, and degrade decision is a pure function of simulated
/// time. The conservation law mirrors pmg::trace's: every simulated
/// nanosecond of the serve timeline is busy (billed to exactly one
/// request), idle, or recovery — PMG_CHECKed in Run and re-derivable from
/// the per-request records.

namespace pmg::metrics {
class MetricsSession;
}  // namespace pmg::metrics

namespace pmg::trace {
class TraceSession;
}  // namespace pmg::trace

namespace pmg::serve {

inline constexpr uint32_t kServeSchemaVersion = 1;

struct ServeConfig {
  memsim::MachineConfig machine;
  uint32_t threads = 8;
  analytics::AlgoOptions algo;
  /// Full-fidelity pagerank round count (serving runs fixed rounds; the
  /// degraded mode truncates to DegradeConfig::pr_rounds).
  uint32_t pr_rounds = 10;
  WorkloadSpec workload;
  AdmissionConfig admission;
  RetryConfig retry;
  HedgeConfig hedge;
  DegradeConfig degrade;
  /// Abort attempts that outlive their deadline at a round boundary
  /// (priced timeout). Off = the naive server that lets slow queries hog
  /// the worker.
  bool deadline_timeout = true;
  faultsim::FaultSchedule faults;
  /// Give up serving after this many machine rebuilds.
  uint32_t max_recoveries = 8;
  /// Observability sessions, re-attached across crash rebuilds like the
  /// recovery drivers do. Not owned.
  trace::TraceSession* trace = nullptr;
  metrics::MetricsSession* metrics = nullptr;
  /// Request-timeline observer (observer.h; pmg::servetrace is the in-tree
  /// implementation). Survives crash rebuilds — it watches the serve
  /// clock, not the machine. Not owned.
  ServeObserver* observer = nullptr;
  /// Host pricing-pool width: 0 = the process-wide PMG_HOST_THREADS pool,
  /// N pins HostPool::ForWorkers(N) (1 = serial). Host-side execution
  /// speed only — no simulated number may depend on it
  /// (docs/determinism.md); the differential suite sweeps it.
  uint32_t host_workers = 0;
};

/// The naive baseline the acceptance scenario beats: unbounded queue, no
/// timeout, no retries, no hedging, no degradation. Fault recovery stays
/// on (a server that never comes back is not a baseline, it is an outage).
ServeConfig NaiveBaseline(ServeConfig cfg);

/// One shed decision, retained in full so tests can replay-compare.
struct ShedRecord {
  uint64_t request_id = 0;
  ShedReason reason = ShedReason::kQueueFullReject;
  SimNs at_ns = 0;
};

struct ServeKindRow {
  QueryKind kind = QueryKind::kBfs;
  uint64_t offered = 0;
  uint64_t completed = 0;
  uint64_t degraded = 0;
  uint64_t shed = 0;
  uint64_t failed = 0;
  uint64_t deadline_missed = 0;
  /// Latency quantiles over answered requests (log2-histogram
  /// interpolation, the pmg::metrics estimator).
  SimNs p50_ns = 0;
  SimNs p99_ns = 0;
  SimNs p999_ns = 0;
};

struct ServeReport {
  uint32_t schema_version = kServeSchemaVersion;
  /// False when the server gave up (max_recoveries exceeded) with
  /// requests still unanswered.
  bool finished = true;
  uint64_t offered = 0;
  uint64_t completed = 0;
  uint64_t completed_degraded = 0;
  uint64_t shed = 0;
  uint64_t failed = 0;
  uint64_t deadline_missed = 0;
  uint64_t timeouts = 0;
  uint64_t retries = 0;
  uint64_t hedges = 0;
  uint64_t crashes = 0;
  uint64_t recoveries = 0;
  /// Shed split by reason, indexed like ShedReason.
  uint64_t shed_by_reason[3] = {0, 0, 0};
  /// The serve-timeline split; Conserves() is the law.
  SimNs busy_ns = 0;
  SimNs idle_ns = 0;
  SimNs recovery_ns = 0;
  SimNs total_ns = 0;
  /// Overall latency quantiles over answered requests.
  SimNs p50_ns = 0;
  SimNs p99_ns = 0;
  SimNs p999_ns = 0;
  /// deadline_missed / offered, percent (shed and failed count as misses:
  /// the client did not get an answer in budget).
  double deadline_miss_pct = 0;
  std::vector<ServeKindRow> kinds;
  /// Every shed decision, in decision order.
  std::vector<ShedRecord> shed_log;
  /// Every request's terminal accounting, by request id.
  std::vector<RequestRecord> records;
  faultsim::FaultReport fault;

  /// Conservation law: every simulated nanosecond of the serve timeline
  /// is attributed to exactly one of busy/idle/recovery.
  bool Conserves() const {
    return busy_ns + idle_ns + recovery_ns == total_ns;
  }

  /// Deterministic JSON (full log capped at kShedLogJsonRows rows, with
  /// explicit dropped accounting; records are summarized, not serialized).
  void AppendJson(trace::JsonWriter* w) const;
  std::string ToJson() const;
};

/// Rows of the shed log the JSON document carries before truncating.
inline constexpr size_t kShedLogJsonRows = 64;

class Server {
 public:
  /// The graph is copied into machine-resident CSR arrays (both
  /// directions + weights: the serving mix needs them all) when Run
  /// starts; `topo` must outlive the call.
  Server(const graph::CsrTopology& topo, const ServeConfig& cfg);

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Builds the resident graph, generates the arrival trace, and drains
  /// it. One call per Server.
  ServeReport Run();

  /// The serve-level metrics registry (latency histograms, outcome
  /// counters). Deterministic PrometheusText — the byte-identical-report
  /// acceptance test compares it across runs.
  const metrics::Registry& registry() const { return registry_; }

 private:
  struct QueueEntry {
    uint64_t req_index = 0;
    uint32_t attempt = 1;  ///< 1-based execution ordinal.
    SimNs enqueued_ns = 0;
  };
  struct RetryEntry {
    SimNs eligible_ns = 0;
    uint64_t seq = 0;  ///< Tie-break: schedule order.
    uint64_t req_index = 0;
    uint32_t attempt = 1;
  };
  enum class AbortWhy : uint8_t { kNone = 0, kDeadline, kHedge };
  struct ExecResult {
    bool crashed = false;
    AbortWhy aborted = AbortWhy::kNone;
    uint64_t checksum = 0;
  };

  /// Serve-timeline clock: offset + machine clock.
  SimNs Now() const;
  /// Advances the serve clock to `to` without machine work (idle).
  void IdleAdvance(SimNs to);
  /// Builds machine+runtime+graph; prices the build. `recovery` bills the
  /// build to recovery_ns (crash rebuild) instead of excluding it
  /// (initial residency, which predates the serve timeline).
  void BuildMachine(bool recovery);
  void DetachSessions();
  /// Admits arrivals/retries due at `now` into the bounded queue,
  /// shedding per policy.
  void PumpArrivals(SimNs now);
  void Admit(const QueueEntry& e, SimNs now);
  void RecordShed(uint64_t req_index, ShedReason reason, SimNs now);
  /// Next event time when the queue is empty (~0ull when none).
  SimNs NextEventNs() const;
  /// Executes one queue entry end to end (timeout/hedge/crash handling).
  void Execute(QueueEntry e);
  /// Queues retry `prev_attempt + 1` of a request after its backoff.
  void ScheduleRetry(uint64_t req_index, uint32_t prev_attempt);
  /// Machine rebuild after a crash observed at serve time `at`; loops on
  /// crash-during-rebuild. False when max_recoveries is exhausted.
  bool Rebuild(SimNs at);
  /// Round-boundary policy check inside a running attempt.
  AbortWhy CheckRound(SimNs deadline_abs_ns, bool hedgeable,
                      SimNs attempt_start_ns);
  /// Runs one attempt of `req` on the machine. Round-boundary checks fire
  /// `ShouldAbort`. Throws SimulatedCrash through.
  ExecResult RunAttempt(const Request& req, bool degraded,
                        SimNs deadline_abs_ns, bool hedgeable,
                        SimNs attempt_start_ns);
  /// True when new attempts should run degraded at `now`.
  bool DegradedNow(SimNs now);
  /// Round-boundary fault observation: refreshes last_fault_ns_.
  void ObserveFaults();
  void Finish(uint64_t req_index, Outcome outcome, bool degraded,
              uint64_t checksum, SimNs now);
  ServeReport BuildReport();

  // Query kernels (round-by-round, abort-checked; return the checksum).
  ExecResult QueryBfs(const Request& req, uint32_t max_rounds,
                      SimNs deadline_abs_ns, bool hedgeable,
                      SimNs attempt_start_ns);
  ExecResult QuerySssp(const Request& req, SimNs deadline_abs_ns,
                       bool hedgeable, SimNs attempt_start_ns);
  ExecResult QueryPrTopK(const Request& req, uint32_t rounds,
                         SimNs deadline_abs_ns, bool hedgeable,
                         SimNs attempt_start_ns);

  const graph::CsrTopology& topo_;
  ServeConfig cfg_;
  faultsim::FaultInjector injector_;

  std::unique_ptr<memsim::Machine> machine_;
  std::unique_ptr<runtime::Runtime> rt_;
  std::unique_ptr<graph::CsrGraph> graph_;

  std::vector<Request> arrivals_;
  size_t next_arrival_ = 0;
  std::deque<QueueEntry> queue_;
  std::vector<RetryEntry> retries_;  ///< Kept sorted by (eligible, seq).
  uint64_t retry_seq_ = 0;

  std::vector<RequestRecord> records_;
  std::vector<ShedRecord> shed_log_;
  uint64_t terminal_ = 0;  ///< Requests in a terminal state.

  SimNs clock_offset_ = 0;
  SimNs busy_ns_ = 0;
  SimNs idle_ns_ = 0;
  SimNs recovery_ns_ = 0;
  uint64_t crashes_ = 0;
  uint64_t recoveries_ = 0;
  uint64_t timeouts_ = 0;
  uint64_t retries_count_ = 0;
  uint64_t hedges_ = 0;
  bool gave_up_ = false;

  /// Degradation state (hysteresis + fault window).
  bool overload_degraded_ = false;
  bool fault_seen_ = false;
  SimNs last_fault_ns_ = 0;
  faultsim::FaultReport fault_snapshot_;

  metrics::Registry registry_;
  struct MetricIds {
    metrics::MetricId latency;
    metrics::MetricId latency_kind[kQueryKindCount];
    metrics::MetricId offered;
    metrics::MetricId completed;
    metrics::MetricId degraded;
    metrics::MetricId shed;
    metrics::MetricId failed;
    metrics::MetricId deadline_missed;
    metrics::MetricId timeouts;
    metrics::MetricId retries;
    metrics::MetricId hedges;
    metrics::MetricId crashes;
  } ids_;
};

}  // namespace pmg::serve

#endif  // PMG_SERVE_SERVER_H_
