#ifndef PMG_SERVE_REQUEST_H_
#define PMG_SERVE_REQUEST_H_

#include <cstdint>

#include "pmg/common/types.h"

/// \file request.h
/// The request vocabulary of pmg::serve: what a client asks the resident
/// graph, and what happened to each request by the time the serve run
/// finished. Everything here is plain data — the Server (server.h) owns
/// the policies that decide an outcome, and every field is a pure function
/// of the workload seed + fault schedule, never of host state.

namespace pmg::serve {

/// The query mix a graph-serving deployment fields (ROADMAP item 1):
/// point lookups with traversal (bfs/sssp), a ranking query (top-K
/// pagerank), and a neighborhood query (ego-net).
enum class QueryKind : uint8_t {
  kBfs = 0,   ///< Level structure from an arbitrary source.
  kSssp,      ///< Weighted distances from an arbitrary source.
  kPrTopK,    ///< Top-K vertices by (truncatable) pull PageRank.
  kEgoNet,    ///< Vertices/edges within `radius` hops of a source.
};

inline constexpr size_t kQueryKindCount = 4;

constexpr const char* QueryKindName(QueryKind k) {
  switch (k) {
    case QueryKind::kBfs:
      return "bfs";
    case QueryKind::kSssp:
      return "sssp";
    case QueryKind::kPrTopK:
      return "pr_topk";
    case QueryKind::kEgoNet:
      return "ego";
  }
  return "?";
}

/// One open-loop arrival. Arrival time and deadline are simulated
/// nanoseconds on the serve timeline (0 = serving start).
struct Request {
  uint64_t id = 0;
  QueryKind kind = QueryKind::kBfs;
  /// Traversal source (bfs/sssp/ego; pr_topk ignores it).
  VertexId source = 0;
  /// pr_topk: how many ranked vertices the client wants.
  uint32_t topk = 8;
  /// ego: hop radius (the degradable knob).
  uint32_t radius = 2;
  SimNs arrival_ns = 0;
  /// Relative latency budget; absolute deadline = arrival_ns + deadline_ns.
  SimNs deadline_ns = 0;
};

/// Terminal state of a request.
enum class Outcome : uint8_t {
  kCompleted = 0,       ///< Full-fidelity answer delivered.
  kCompletedDegraded,   ///< Answer delivered in a degraded mode (truncated
                        ///< pagerank, depth-capped ego-net, or a retry that
                        ///< re-ran degraded).
  kShed,                ///< Dropped by admission control; never answered.
  kFailed,              ///< All attempts exhausted (timeouts/crashes).
};

constexpr const char* OutcomeName(Outcome o) {
  switch (o) {
    case Outcome::kCompleted:
      return "completed";
    case Outcome::kCompletedDegraded:
      return "completed-degraded";
    case Outcome::kShed:
      return "shed";
    case Outcome::kFailed:
      return "failed";
  }
  return "?";
}

/// Why admission control dropped a request (valid when Outcome::kShed).
enum class ShedReason : uint8_t {
  kQueueFullReject = 0,  ///< Bounded queue full; newest arrival rejected.
  kQueueFullOldest,      ///< Bounded queue full; oldest entry evicted.
  kDeadlineHopeless,     ///< Deadline-aware policy: least-slack victim, or
                         ///< a first attempt already past its deadline at
                         ///< dispatch.
};

constexpr const char* ShedReasonName(ShedReason r) {
  switch (r) {
    case ShedReason::kQueueFullReject:
      return "queue-full-reject";
    case ShedReason::kQueueFullOldest:
      return "queue-full-oldest";
    case ShedReason::kDeadlineHopeless:
      return "deadline-hopeless";
  }
  return "?";
}

/// Full per-request accounting, retained so tests can re-derive the
/// conservation law (sum of billed_ns over records == the server's busy
/// time) and replay shed decisions.
struct RequestRecord {
  Request req;
  Outcome outcome = Outcome::kCompleted;
  ShedReason shed_reason = ShedReason::kQueueFullReject;
  /// Completed (possibly degraded) after its absolute deadline.
  bool missed_deadline = false;
  /// Executions started (first attempt + retries + the hedge re-run).
  uint32_t attempts = 0;
  uint32_t timeouts = 0;
  uint32_t hedges = 0;
  /// Crashes that interrupted one of this request's attempts.
  uint32_t crashes = 0;
  /// Serve-timeline completion; 0 for shed requests.
  SimNs completion_ns = 0;
  /// completion_ns - arrival_ns for answered requests; 0 otherwise.
  SimNs latency_ns = 0;
  /// Machine time consumed by every attempt of this request, including
  /// aborted and crashed partial work — the priced-timeout contract. Each
  /// simulated nanosecond the server spends executing is billed to exactly
  /// one request.
  SimNs billed_ns = 0;
  /// Deterministic digest of the answer (levels/distances/top-K ids/ego
  /// size), for replay-identity tests. 0 for unanswered requests.
  uint64_t result_checksum = 0;
};

}  // namespace pmg::serve

#endif  // PMG_SERVE_REQUEST_H_
