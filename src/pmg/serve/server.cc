#include "pmg/serve/server.h"

#include <algorithm>
#include <utility>

#include "pmg/common/check.h"
#include "pmg/memsim/fault_hook.h"
#include "pmg/metrics/metrics_session.h"
#include "pmg/runtime/worklist.h"
#include "pmg/trace/trace_session.h"

namespace pmg::serve {

namespace {

/// "No event" sentinel on the serve timeline.
inline constexpr SimNs kNever = ~0ull;

/// Order-sensitive fold for result digests: position-salted splitmix64.
uint64_t FoldChecksum(uint64_t h, uint64_t value) {
  return ServeMix64(h ^ (value + 0x9e3779b97f4a7c15ull));
}

bool Answered(Outcome o) {
  return o == Outcome::kCompleted || o == Outcome::kCompletedDegraded;
}

}  // namespace

ServeConfig NaiveBaseline(ServeConfig cfg) {
  cfg.admission.queue_capacity = 0;
  cfg.admission.policy = ShedPolicy::kRejectNewest;
  cfg.deadline_timeout = false;
  cfg.retry.max_attempts = 1;
  cfg.hedge.enabled = false;
  cfg.degrade.enabled = false;
  return cfg;
}

Server::Server(const graph::CsrTopology& topo, const ServeConfig& cfg)
    : topo_(topo), cfg_(cfg), injector_(cfg.faults) {
  // Latency histograms carry exemplars: each log2 bucket remembers the
  // request id of its largest observation, so a blown-up tail bucket links
  // straight to a request the servetrace explainer can decompose.
  ids_.latency = registry_.AddHistogramWithExemplars(
      "pmg_serve_latency_ns", "Answered-request latency");
  for (size_t k = 0; k < kQueryKindCount; ++k) {
    ids_.latency_kind[k] = registry_.AddHistogramWithExemplars(
        std::string("pmg_serve_latency_") +
            QueryKindName(static_cast<QueryKind>(k)) + "_ns",
        "Answered-request latency by query kind");
  }
  ids_.offered = registry_.AddCounter("pmg_serve_offered_total",
                                      "Requests the arrival trace offered");
  ids_.completed = registry_.AddCounter("pmg_serve_completed_total",
                                        "Full-fidelity answers");
  ids_.degraded = registry_.AddCounter("pmg_serve_degraded_total",
                                       "Degraded answers");
  ids_.shed = registry_.AddCounter("pmg_serve_shed_total",
                                   "Requests dropped by admission control");
  ids_.failed = registry_.AddCounter("pmg_serve_failed_total",
                                     "Requests that exhausted every attempt");
  ids_.deadline_missed = registry_.AddCounter(
      "pmg_serve_deadline_missed_total",
      "Requests not answered within their deadline (shed/failed included)");
  ids_.timeouts = registry_.AddCounter("pmg_serve_timeouts_total",
                                       "Attempts aborted at their deadline");
  ids_.retries = registry_.AddCounter("pmg_serve_retries_total",
                                      "Retry attempts scheduled");
  ids_.hedges = registry_.AddCounter("pmg_serve_hedges_total",
                                     "Straggler attempts hedged");
  ids_.crashes = registry_.AddCounter("pmg_serve_crashes_total",
                                      "Simulated crashes while serving");
}

SimNs Server::Now() const { return clock_offset_ + machine_->now(); }

void Server::IdleAdvance(SimNs to) {
  const SimNs now = Now();
  PMG_CHECK(to >= now);
  idle_ns_ += to - now;
  clock_offset_ += to - now;
}

void Server::BuildMachine(bool recovery) {
  // Tear down in dependency order: the graph's NumaArrays free their
  // regions on the machine they were built on, so they must go first.
  graph_.reset();
  rt_.reset();
  machine_ = std::make_unique<memsim::Machine>(cfg_.machine);
  // Plumbed for uniformity: the always-attached fault hook keeps serving
  // machines on direct pricing, but the pool costs nothing unattended.
  machine_->SetHostPool(cfg_.host_workers == 0
                            ? memsim::HostPool::Default()
                            : memsim::HostPool::ForWorkers(cfg_.host_workers));
  machine_->SetFaultHook(&injector_);
  // Session attach order matches the recovery drivers: trace first so the
  // metrics session's epoch rows land on an already-continuous timeline.
  if (cfg_.trace != nullptr) cfg_.trace->Attach(machine_.get());
  if (cfg_.metrics != nullptr) cfg_.metrics->Attach(machine_.get());
  rt_ = std::make_unique<runtime::Runtime>(machine_.get(), cfg_.threads);
  graph::GraphLayout layout;
  layout.policy = cfg_.algo.label_policy;
  // The serving mix needs everything: out-edges (bfs/sssp/ego), in-edges
  // (pull pagerank) and weights (sssp).
  layout.load_out_edges = true;
  layout.load_in_edges = true;
  layout.with_weights = true;
  graph_ = std::make_unique<graph::CsrGraph>(machine_.get(), topo_, layout,
                                             "serve.g");
  graph_->Prefault(cfg_.threads);
  machine_->CloseEpochIfOpen();
  (void)recovery;  // Billing is the caller's: Run excludes the initial
                   // build from the timeline, Rebuild bills recovery_ns_.
}

void Server::DetachSessions() {
  if (cfg_.metrics != nullptr && cfg_.metrics->attached()) {
    cfg_.metrics->Detach();
  }
  if (cfg_.trace != nullptr && cfg_.trace->attached()) cfg_.trace->Detach();
}

bool Server::Rebuild(SimNs at) {
  while (true) {
    if (recoveries_ >= cfg_.max_recoveries) {
      gave_up_ = true;
      // Pin the serve clock to the end of the outage so the final report's
      // timeline stays conserved (every dead rebuild's time is already in
      // recovery_ns_ and `at`).
      clock_offset_ = at - machine_->now();
      return false;
    }
    ++recoveries_;
    try {
      BuildMachine(/*recovery=*/true);
      recovery_ns_ += machine_->now();
      clock_offset_ = at;
      ObserveFaults();
      if (machine_->trace_sink() != nullptr) {
        machine_->trace_sink()->OnInstant(
            memsim::TraceInstantKind::kServeRecovery, 0, machine_->now(),
            recoveries_);
      }
      return true;
    } catch (const memsim::SimulatedCrash&) {
      // The rebuild itself crashed (the schedule can fire on the graph
      // reload's media ops). The outage grows by the dead rebuild's time.
      ++crashes_;
      registry_.Add(ids_.crashes, 1);
      try {
        machine_->CloseEpochIfOpen();
      } catch (const memsim::SimulatedCrash&) {
        ++crashes_;
        registry_.Add(ids_.crashes, 1);
      }
      recovery_ns_ += machine_->now();
      at += machine_->now();
      DetachSessions();
    }
  }
}

void Server::ObserveFaults() {
  const faultsim::FaultReport& r = injector_.report();
  const bool changed = r.transient_faults != fault_snapshot_.transient_faults ||
                       r.degraded_epochs != fault_snapshot_.degraded_epochs ||
                       r.ue_delivered != fault_snapshot_.ue_delivered ||
                       r.crashes != fault_snapshot_.crashes;
  if (changed) {
    fault_seen_ = true;
    last_fault_ns_ = Now();
    fault_snapshot_ = r;
  }
}

bool Server::DegradedNow(SimNs now) {
  if (!cfg_.degrade.enabled) return false;
  if (!overload_degraded_ && queue_.size() >= cfg_.degrade.queue_high) {
    overload_degraded_ = true;
  } else if (overload_degraded_ && queue_.size() <= cfg_.degrade.queue_low) {
    overload_degraded_ = false;
  }
  const bool fault_window =
      fault_seen_ && now - last_fault_ns_ <= cfg_.degrade.fault_hold_ns;
  return overload_degraded_ || fault_window;
}

void Server::RecordShed(uint64_t req_index, ShedReason reason, SimNs now) {
  RequestRecord& rec = records_[req_index];
  rec.outcome = Outcome::kShed;
  rec.shed_reason = reason;
  rec.missed_deadline = true;  // no answer is a missed budget
  shed_log_.push_back(ShedRecord{rec.req.id, reason, now});
  registry_.Add(ids_.shed, 1);
  registry_.Add(ids_.deadline_missed, 1);
  if (machine_->trace_sink() != nullptr) {
    machine_->trace_sink()->OnInstant(memsim::TraceInstantKind::kServeShed, 0,
                                      machine_->now(), rec.req.id);
  }
  if (cfg_.observer != nullptr) cfg_.observer->OnShed(req_index, reason, now);
  ++terminal_;
}

void Server::Admit(const QueueEntry& e, SimNs now) {
  const uint64_t cap = cfg_.admission.queue_capacity;
  if (cap == 0 || queue_.size() < cap) {
    queue_.push_back(e);
    return;
  }
  switch (cfg_.admission.policy) {
    case ShedPolicy::kRejectNewest:
      RecordShed(e.req_index, ShedReason::kQueueFullReject, now);
      return;
    case ShedPolicy::kDropOldest:
      RecordShed(queue_.front().req_index, ShedReason::kQueueFullOldest, now);
      queue_.pop_front();
      queue_.push_back(e);
      return;
    case ShedPolicy::kDeadlineAware: {
      // Evict the least-slack request among the queue and the arrival.
      // Scan order (front to back, arrival last) breaks ties, so the
      // decision is a pure function of queue state.
      auto slack = [&](uint64_t idx) {
        const Request& r = records_[idx].req;
        return static_cast<int64_t>(r.arrival_ns + r.deadline_ns) -
               static_cast<int64_t>(now);
      };
      size_t victim = queue_.size();  // == the incoming entry
      int64_t worst = slack(e.req_index);
      for (size_t i = 0; i < queue_.size(); ++i) {
        const int64_t s = slack(queue_[i].req_index);
        if (s < worst) {
          worst = s;
          victim = i;
        }
      }
      if (victim == queue_.size()) {
        RecordShed(e.req_index, ShedReason::kDeadlineHopeless, now);
      } else {
        RecordShed(queue_[victim].req_index, ShedReason::kDeadlineHopeless,
                   now);
        queue_.erase(queue_.begin() + static_cast<ptrdiff_t>(victim));
        queue_.push_back(e);
      }
      return;
    }
  }
}

void Server::PumpArrivals(SimNs now) {
  // Merge the arrival stream and due retries in event order (ties go to
  // the retry: it was scheduled first).
  while (true) {
    const SimNs retry_at =
        retries_.empty() ? kNever : retries_.front().eligible_ns;
    const SimNs arrival_at = next_arrival_ < arrivals_.size()
                                 ? arrivals_[next_arrival_].arrival_ns
                                 : kNever;
    if (retry_at > now && arrival_at > now) return;
    if (retry_at <= arrival_at) {
      const RetryEntry r = retries_.front();
      retries_.erase(retries_.begin());
      if (cfg_.observer != nullptr) {
        cfg_.observer->OnEnqueue(r.req_index, r.attempt, retry_at);
      }
      Admit(QueueEntry{r.req_index, r.attempt, retry_at}, now);
    } else {
      if (cfg_.observer != nullptr) {
        cfg_.observer->OnEnqueue(next_arrival_, 1, arrival_at);
      }
      Admit(QueueEntry{next_arrival_, 1, arrival_at}, now);
      ++next_arrival_;
    }
  }
}

SimNs Server::NextEventNs() const {
  SimNs next = kNever;
  if (!retries_.empty()) next = retries_.front().eligible_ns;
  if (next_arrival_ < arrivals_.size()) {
    next = std::min(next, arrivals_[next_arrival_].arrival_ns);
  }
  return next;
}

void Server::ScheduleRetry(uint64_t req_index, uint32_t prev_attempt) {
  ++retries_count_;
  registry_.Add(ids_.retries, 1);
  if (cfg_.observer != nullptr) cfg_.observer->OnBackoff(req_index, Now());
  RetryEntry r;
  r.eligible_ns =
      Now() + cfg_.retry.BackoffNs(records_[req_index].req.id, prev_attempt);
  r.seq = retry_seq_++;
  r.req_index = req_index;
  r.attempt = prev_attempt + 1;
  const auto pos = std::upper_bound(
      retries_.begin(), retries_.end(), r, [](const RetryEntry& a,
                                              const RetryEntry& b) {
        return a.eligible_ns != b.eligible_ns ? a.eligible_ns < b.eligible_ns
                                              : a.seq < b.seq;
      });
  retries_.insert(pos, r);
}

Server::AbortWhy Server::CheckRound(SimNs deadline_abs_ns, bool hedgeable,
                                    SimNs attempt_start_ns) {
  ObserveFaults();
  if (cfg_.deadline_timeout && Now() > deadline_abs_ns) {
    return AbortWhy::kDeadline;
  }
  if (hedgeable && Now() - attempt_start_ns > cfg_.hedge.hedge_after_ns) {
    return AbortWhy::kHedge;
  }
  return AbortWhy::kNone;
}

// --- Query kernels -------------------------------------------------------

Server::ExecResult Server::QueryBfs(const Request& req, uint32_t max_rounds,
                                    SimNs deadline_abs_ns, bool hedgeable,
                                    SimNs attempt_start_ns) {
  const uint64_t n = graph_->num_vertices();
  const memsim::PagePolicy policy = cfg_.algo.label_policy;
  runtime::NumaArray<uint32_t> level(machine_.get(), n, policy,
                                     "serve.bfs.level");
  runtime::DenseWorklist wl(machine_.get(), n, policy, "serve.bfs.wl");
  rt_->ParallelFor(0, n, [&](ThreadId t, uint64_t v) {
    level.Set(t, v, analytics::kInfLevel);
  });
  level.Set(0, req.source, 0);
  wl.ActivateCur(0, req.source);
  uint32_t round = 0;
  ExecResult out;
  while (!wl.Empty() && round < max_rounds) {
    const uint32_t next_level = round + 1;
    wl.ForEachActive(*rt_, [&](ThreadId t, uint64_t v) {
      graph_->ForEachOutEdge(t, v, [&](ThreadId tt, VertexId u, uint32_t) {
        if (level.CasMin(tt, u, next_level)) wl.Activate(tt, u);
      });
    });
    wl.Advance(*rt_);
    ++round;
    out.aborted = CheckRound(deadline_abs_ns, hedgeable, attempt_start_ns);
    if (out.aborted != AbortWhy::kNone) return out;
  }
  // Digest over reached vertices only, so a depth-capped (ego) run digests
  // exactly its neighborhood.
  uint64_t h = 0;
  for (uint64_t v = 0; v < n; ++v) {
    if (level.raw()[v] != analytics::kInfLevel) {
      h = FoldChecksum(h, v * 2654435761ull + level.raw()[v]);
    }
  }
  out.checksum = h;
  return out;
}

Server::ExecResult Server::QuerySssp(const Request& req, SimNs deadline_abs_ns,
                                     bool hedgeable, SimNs attempt_start_ns) {
  const uint64_t n = graph_->num_vertices();
  const memsim::PagePolicy policy = cfg_.algo.label_policy;
  runtime::NumaArray<uint64_t> dist(machine_.get(), n, policy,
                                    "serve.sssp.dist");
  runtime::DenseWorklist wl(machine_.get(), n, policy, "serve.sssp.wl");
  rt_->ParallelFor(0, n, [&](ThreadId t, uint64_t v) {
    dist.Set(t, v, analytics::kInfDist);
  });
  dist.Set(0, req.source, 0);
  wl.ActivateCur(0, req.source);
  ExecResult out;
  while (!wl.Empty()) {
    wl.ForEachActive(*rt_, [&](ThreadId t, uint64_t v) {
      const uint64_t dv = dist.GetAtomic(t, v);
      graph_->ForEachOutEdge(t, v, [&](ThreadId tt, VertexId u, uint32_t w) {
        if (dist.CasMin(tt, u, dv + w)) wl.Activate(tt, u);
      });
    });
    wl.Advance(*rt_);
    out.aborted = CheckRound(deadline_abs_ns, hedgeable, attempt_start_ns);
    if (out.aborted != AbortWhy::kNone) return out;
  }
  uint64_t h = 0;
  for (uint64_t v = 0; v < n; ++v) {
    if (dist.raw()[v] != analytics::kInfDist) {
      h = FoldChecksum(h, v * 2654435761ull + dist.raw()[v]);
    }
  }
  out.checksum = h;
  return out;
}

Server::ExecResult Server::QueryPrTopK(const Request& req, uint32_t rounds,
                                       SimNs deadline_abs_ns, bool hedgeable,
                                       SimNs attempt_start_ns) {
  const uint64_t n = graph_->num_vertices();
  const memsim::PagePolicy policy = cfg_.algo.label_policy;
  const double base = 1.0 - cfg_.algo.pr_damping;
  runtime::NumaArray<double> rank(machine_.get(), n, policy, "serve.pr.rank");
  runtime::NumaArray<double> contrib(machine_.get(), n, policy,
                                     "serve.pr.contrib");
  rt_->ParallelFor(0, n,
                   [&](ThreadId t, uint64_t v) { rank.Set(t, v, base); });
  ExecResult out;
  // Fixed-round pull pagerank: the round count *is* the fidelity knob the
  // degraded mode truncates, so there is no tolerance test (and no
  // cross-thread fp reduction to keep deterministic).
  for (uint32_t r = 0; r < rounds; ++r) {
    rt_->ParallelFor(0, n, [&](ThreadId t, uint64_t v) {
      const auto [first, last] = graph_->OutRange(t, v);
      const uint64_t deg = last - first;
      contrib.Set(t, v,
                  deg == 0 ? 0.0 : rank.Get(t, v) / static_cast<double>(deg));
    });
    rt_->ParallelFor(0, n, [&](ThreadId t, uint64_t v) {
      double sum = 0;
      const auto [first, last] = graph_->InRange(t, v);
      for (EdgeId e = first; e < last; ++e) {
        sum += contrib.Get(t, graph_->InSrc(t, e));
      }
      rank.Set(t, v, base + cfg_.algo.pr_damping * sum);
    });
    out.aborted = CheckRound(deadline_abs_ns, hedgeable, attempt_start_ns);
    if (out.aborted != AbortWhy::kNone) return out;
  }
  // Costed rank scan (the top-K selection pass reads every score)...
  rt_->ParallelFor(0, n,
                   [&](ThreadId t, uint64_t v) { (void)rank.Get(t, v); });
  out.aborted = CheckRound(deadline_abs_ns, hedgeable, attempt_start_ns);
  if (out.aborted != AbortWhy::kNone) return out;
  // ...with the heap maintenance host-side (its traffic is O(K), noise
  // next to the scan). Ties break on vertex id for a deterministic answer.
  const uint64_t k = std::min<uint64_t>(req.topk, n);
  std::vector<std::pair<double, uint64_t>> top;
  top.reserve(n);
  for (uint64_t v = 0; v < n; ++v) top.emplace_back(rank.raw()[v], v);
  std::partial_sort(top.begin(), top.begin() + static_cast<ptrdiff_t>(k),
                    top.end(), [](const auto& a, const auto& b) {
                      return a.first != b.first ? a.first > b.first
                                                : a.second < b.second;
                    });
  uint64_t h = 0;
  for (uint64_t i = 0; i < k; ++i) {
    h = FoldChecksum(h, top[i].second + (i << 48));
  }
  out.checksum = h;
  return out;
}

Server::ExecResult Server::RunAttempt(const Request& req, bool degraded,
                                      SimNs deadline_abs_ns, bool hedgeable,
                                      SimNs attempt_start_ns) {
  switch (req.kind) {
    case QueryKind::kBfs:
      return QueryBfs(req, ~0u, deadline_abs_ns, hedgeable, attempt_start_ns);
    case QueryKind::kSssp:
      return QuerySssp(req, deadline_abs_ns, hedgeable, attempt_start_ns);
    case QueryKind::kPrTopK:
      return QueryPrTopK(req,
                         degraded ? cfg_.degrade.pr_rounds : cfg_.pr_rounds,
                         deadline_abs_ns, hedgeable, attempt_start_ns);
    case QueryKind::kEgoNet:
      return QueryBfs(req, degraded ? cfg_.degrade.ego_radius : req.radius,
                      deadline_abs_ns, hedgeable, attempt_start_ns);
  }
  PMG_CHECK_MSG(false, "unreachable query kind");
  return ExecResult{};
}

void Server::Finish(uint64_t req_index, Outcome outcome, bool degraded,
                    uint64_t checksum, SimNs now) {
  (void)degraded;
  RequestRecord& rec = records_[req_index];
  rec.outcome = outcome;
  rec.result_checksum = checksum;
  if (Answered(outcome)) {
    rec.completion_ns = now;
    rec.latency_ns = now - rec.req.arrival_ns;
    rec.missed_deadline = rec.latency_ns > rec.req.deadline_ns;
    registry_.ObserveExemplar(ids_.latency, rec.latency_ns, rec.req.id);
    registry_.ObserveExemplar(
        ids_.latency_kind[static_cast<size_t>(rec.req.kind)], rec.latency_ns,
        rec.req.id);
    registry_.Add(
        outcome == Outcome::kCompleted ? ids_.completed : ids_.degraded, 1);
    if (machine_->trace_sink() != nullptr) {
      machine_->trace_sink()->OnInstant(
          memsim::TraceInstantKind::kServeComplete, 0, machine_->now(),
          rec.req.id);
    }
  } else {
    rec.missed_deadline = true;
    registry_.Add(ids_.failed, 1);
  }
  if (rec.missed_deadline) registry_.Add(ids_.deadline_missed, 1);
  if (cfg_.observer != nullptr) {
    cfg_.observer->OnFinish(req_index, outcome, rec.missed_deadline, now);
  }
  ++terminal_;
}

void Server::Execute(QueueEntry e) {
  const Request& req = records_[e.req_index].req;
  RequestRecord& rec = records_[e.req_index];
  const SimNs deadline_abs = req.arrival_ns + req.deadline_ns;
  const SimNs dispatch_ns = Now();
  // Deadline-aware dispatch drop: a *first* attempt already past its
  // deadline is pure waste. A retry past its deadline still runs — the
  // late (degraded) answer is the graceful-degradation contract.
  if (cfg_.admission.policy == ShedPolicy::kDeadlineAware &&
      cfg_.admission.queue_capacity > 0 && e.attempt == 1 &&
      dispatch_ns > deadline_abs) {
    RecordShed(e.req_index, ShedReason::kDeadlineHopeless, dispatch_ns);
    return;
  }
  bool degraded = cfg_.degrade.enabled &&
                  (e.attempt > 1 || DegradedNow(dispatch_ns));
  bool hedgeable = cfg_.hedge.enabled && e.attempt == 1 && !degraded;
  bool hedge_rerun = false;
  while (true) {
    ++rec.attempts;
    if (machine_->trace_sink() != nullptr) {
      machine_->trace_sink()->OnInstant(
          memsim::TraceInstantKind::kServeDispatch, 0, machine_->now(),
          req.id);
    }
    const SimNs attempt_start = Now();
    if (cfg_.observer != nullptr) {
      cfg_.observer->OnDispatch(e.req_index, rec.attempts, degraded,
                                hedge_rerun, attempt_start);
    }
    const SimNs m0 = machine_->now();
    ExecResult r;
    bool crashed = false;
    try {
      r = RunAttempt(req, degraded, deadline_abs, hedgeable, attempt_start);
      machine_->CloseEpochIfOpen();
    } catch (const memsim::SimulatedCrash&) {
      crashed = true;
      ++crashes_;
      ++rec.crashes;
      registry_.Add(ids_.crashes, 1);
      // Close the interrupted epoch so the partial work is priced; a
      // second crash while closing is swallowed — this machine is dead.
      try {
        machine_->CloseEpochIfOpen();
      } catch (const memsim::SimulatedCrash&) {
        ++crashes_;
        registry_.Add(ids_.crashes, 1);
      }
    }
    // Everything the machine billed during the attempt — including work a
    // timeout, hedge or crash threw away — lands on this request.
    const SimNs delta = machine_->now() - m0;
    busy_ns_ += delta;
    rec.billed_ns += delta;
    if (cfg_.observer != nullptr) {
      ServeObserver::ExecEnd why = ServeObserver::ExecEnd::kAnswered;
      if (crashed) {
        why = ServeObserver::ExecEnd::kCrash;
      } else if (r.aborted == AbortWhy::kDeadline) {
        why = ServeObserver::ExecEnd::kDeadline;
      } else if (r.aborted == AbortWhy::kHedge) {
        why = ServeObserver::ExecEnd::kHedge;
      }
      cfg_.observer->OnExecEnd(e.req_index, why, attempt_start + delta);
    }
    if (crashed) {
      const SimNs t_crash = Now();
      if (machine_->trace_sink() != nullptr) {
        machine_->trace_sink()->OnInstant(memsim::TraceInstantKind::kCrash, 0,
                                          machine_->now(), 1);
      }
      DetachSessions();
      const bool rebuilt = Rebuild(t_crash);
      if (cfg_.observer != nullptr) {
        cfg_.observer->OnRecovery(e.req_index, t_crash, Now());
      }
      if (!rebuilt) return;  // gave up; Run fails the remainder
      // The in-flight request rides the retry path (crash retries do not
      // consume the timeout-retry budget; they are bounded by
      // max_recoveries instead).
      ScheduleRetry(e.req_index, e.attempt);
      return;
    }
    if (r.aborted == AbortWhy::kHedge) {
      // The straggler is abandoned (its bill stands) and re-run degraded
      // immediately on the same dispatch.
      ++hedges_;
      ++rec.hedges;
      registry_.Add(ids_.hedges, 1);
      degraded = true;
      hedgeable = false;
      hedge_rerun = true;
      continue;
    }
    if (r.aborted == AbortWhy::kDeadline) {
      ++timeouts_;
      ++rec.timeouts;
      registry_.Add(ids_.timeouts, 1);
      if (e.attempt < cfg_.retry.max_attempts) {
        ScheduleRetry(e.req_index, e.attempt);
      } else {
        Finish(e.req_index, Outcome::kFailed, degraded, 0, Now());
      }
      return;
    }
    const bool degraded_answer =
        degraded && (req.kind == QueryKind::kPrTopK ||
                     req.kind == QueryKind::kEgoNet);
    Finish(e.req_index,
           degraded_answer ? Outcome::kCompletedDegraded
                           : Outcome::kCompleted,
           degraded_answer, r.checksum, Now());
    return;
  }
}

ServeReport Server::Run() {
  PMG_CHECK_MSG(records_.empty(), "Server::Run is one-shot");
  arrivals_ = GenerateArrivals(cfg_.workload, topo_.num_vertices);
  records_.resize(arrivals_.size());
  for (size_t i = 0; i < arrivals_.size(); ++i) records_[i].req = arrivals_[i];
  registry_.Add(ids_.offered, arrivals_.size());
  if (cfg_.observer != nullptr) cfg_.observer->OnRun(arrivals_);

  // Initial residency: build the machine and load the graph. This predates
  // the serve timeline (a server answers queries against an already-
  // resident graph), so the clock offset rebases Now() to zero.
  BuildMachine(/*recovery=*/false);
  clock_offset_ = 0 - machine_->now();

  while (terminal_ < records_.size() && !gave_up_) {
    PumpArrivals(Now());
    if (queue_.empty()) {
      if (terminal_ == records_.size()) break;
      const SimNs next = NextEventNs();
      PMG_CHECK_MSG(next != kNever,
                    "serve loop stalled with unanswered requests");
      if (next > Now()) IdleAdvance(next);
      continue;
    }
    const QueueEntry e = queue_.front();
    queue_.pop_front();
    Execute(e);
  }
  if (gave_up_) {
    // Fail everything not yet terminal: queued, backing off, or unarrived.
    // (A fresh record still reads kCompleted with completion_ns == 0; an
    // actually-answered request always completes at a nonzero time.)
    for (size_t i = 0; i < records_.size(); ++i) {
      RequestRecord& rec = records_[i];
      const bool terminal = rec.outcome == Outcome::kShed ||
                            rec.outcome == Outcome::kFailed ||
                            (Answered(rec.outcome) && rec.completion_ns != 0);
      if (terminal) continue;
      rec.outcome = Outcome::kFailed;
      rec.missed_deadline = true;
      registry_.Add(ids_.failed, 1);
      registry_.Add(ids_.deadline_missed, 1);
      if (cfg_.observer != nullptr) cfg_.observer->OnAbandon(i, Now());
    }
  }
  DetachSessions();
  return BuildReport();
}

ServeReport Server::BuildReport() {
  ServeReport rep;
  rep.finished = !gave_up_;
  rep.offered = records_.size();
  rep.timeouts = timeouts_;
  rep.retries = retries_count_;
  rep.hedges = hedges_;
  rep.crashes = crashes_;
  rep.recoveries = recoveries_;
  rep.busy_ns = busy_ns_;
  rep.idle_ns = idle_ns_;
  rep.recovery_ns = recovery_ns_;
  rep.total_ns = Now();
  PMG_CHECK_MSG(rep.Conserves(),
                "serve timeline leaked: busy+idle+recovery != total");

  rep.kinds.resize(kQueryKindCount);
  for (size_t k = 0; k < kQueryKindCount; ++k) {
    rep.kinds[k].kind = static_cast<QueryKind>(k);
  }
  for (const RequestRecord& rec : records_) {
    ServeKindRow& row = rep.kinds[static_cast<size_t>(rec.req.kind)];
    ++row.offered;
    switch (rec.outcome) {
      case Outcome::kCompleted:
        ++rep.completed;
        ++row.completed;
        break;
      case Outcome::kCompletedDegraded:
        ++rep.completed_degraded;
        ++row.degraded;
        break;
      case Outcome::kShed:
        ++rep.shed;
        ++row.shed;
        ++rep.shed_by_reason[static_cast<size_t>(rec.shed_reason)];
        break;
      case Outcome::kFailed:
        ++rep.failed;
        ++row.failed;
        break;
    }
    if (rec.missed_deadline) {
      ++rep.deadline_missed;
      ++row.deadline_missed;
    }
  }
  rep.deadline_miss_pct =
      rep.offered == 0
          ? 0.0
          : 100.0 * static_cast<double>(rep.deadline_missed) /
                static_cast<double>(rep.offered);

  const metrics::HistogramSnapshot overall =
      registry_.HistogramValue(ids_.latency);
  rep.p50_ns = static_cast<SimNs>(overall.Quantile(0.5));
  rep.p99_ns = static_cast<SimNs>(overall.Quantile(0.99));
  rep.p999_ns = static_cast<SimNs>(overall.Quantile(0.999));
  for (size_t k = 0; k < kQueryKindCount; ++k) {
    const metrics::HistogramSnapshot h =
        registry_.HistogramValue(ids_.latency_kind[k]);
    rep.kinds[k].p50_ns = static_cast<SimNs>(h.Quantile(0.5));
    rep.kinds[k].p99_ns = static_cast<SimNs>(h.Quantile(0.99));
    rep.kinds[k].p999_ns = static_cast<SimNs>(h.Quantile(0.999));
  }
  rep.shed_log = shed_log_;
  rep.records = records_;
  rep.fault = injector_.report();
  return rep;
}

// --- Report JSON ---------------------------------------------------------

void ServeReport::AppendJson(trace::JsonWriter* w) const {
  w->BeginObject();
  w->Key("schema_version").UInt(schema_version);
  w->Key("finished").Bool(finished);
  w->Key("offered").UInt(offered);
  w->Key("completed").UInt(completed);
  w->Key("completed_degraded").UInt(completed_degraded);
  w->Key("shed").UInt(shed);
  w->Key("failed").UInt(failed);
  w->Key("deadline_missed").UInt(deadline_missed);
  w->Key("deadline_miss_pct").Double(deadline_miss_pct);
  w->Key("timeouts").UInt(timeouts);
  w->Key("retries").UInt(retries);
  w->Key("hedges").UInt(hedges);
  w->Key("crashes").UInt(crashes);
  w->Key("recoveries").UInt(recoveries);
  w->Key("shed_by_reason").BeginObject();
  w->Key("queue-full-reject").UInt(shed_by_reason[0]);
  w->Key("queue-full-oldest").UInt(shed_by_reason[1]);
  w->Key("deadline-hopeless").UInt(shed_by_reason[2]);
  w->EndObject();
  w->Key("busy_ns").UInt(busy_ns);
  w->Key("idle_ns").UInt(idle_ns);
  w->Key("recovery_ns").UInt(recovery_ns);
  w->Key("total_ns").UInt(total_ns);
  w->Key("p50_ns").UInt(p50_ns);
  w->Key("p99_ns").UInt(p99_ns);
  w->Key("p999_ns").UInt(p999_ns);
  w->Key("kinds").BeginArray();
  for (const ServeKindRow& row : kinds) {
    w->BeginObject();
    w->Key("kind").String(QueryKindName(row.kind));
    w->Key("offered").UInt(row.offered);
    w->Key("completed").UInt(row.completed);
    w->Key("degraded").UInt(row.degraded);
    w->Key("shed").UInt(row.shed);
    w->Key("failed").UInt(row.failed);
    w->Key("deadline_missed").UInt(row.deadline_missed);
    w->Key("p50_ns").UInt(row.p50_ns);
    w->Key("p99_ns").UInt(row.p99_ns);
    w->Key("p999_ns").UInt(row.p999_ns);
    w->EndObject();
  }
  w->EndArray();
  w->Key("shed_log").BeginArray();
  const size_t shown = std::min(shed_log.size(), kShedLogJsonRows);
  for (size_t i = 0; i < shown; ++i) {
    w->BeginObject();
    w->Key("request").UInt(shed_log[i].request_id);
    w->Key("reason").String(ShedReasonName(shed_log[i].reason));
    w->Key("at_ns").UInt(shed_log[i].at_ns);
    w->EndObject();
  }
  w->EndArray();
  w->Key("shed_log_dropped").UInt(shed_log.size() - shown);
  w->Key("fault").BeginObject();
  w->Key("media_ops").UInt(fault.media_ops);
  w->Key("ue_delivered").UInt(fault.ue_delivered);
  w->Key("transient_faults").UInt(fault.transient_faults);
  w->Key("retries").UInt(fault.retries);
  w->Key("stall_ns").UInt(fault.stall_ns);
  w->Key("degraded_epochs").UInt(fault.degraded_epochs);
  w->Key("crashes").UInt(fault.crashes);
  w->EndObject();
  w->EndObject();
}

std::string ServeReport::ToJson() const {
  trace::JsonWriter w;
  AppendJson(&w);
  return w.str();
}

}  // namespace pmg::serve
