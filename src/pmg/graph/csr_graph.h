#ifndef PMG_GRAPH_CSR_GRAPH_H_
#define PMG_GRAPH_CSR_GRAPH_H_

#include <string>
#include <string_view>
#include <utility>

#include "pmg/graph/topology.h"
#include "pmg/memsim/machine.h"
#include "pmg/runtime/numa_array.h"

/// \file csr_graph.h
/// The machine-resident graph: CSR arrays stored in NumaArrays so every
/// topology access is priced by the memory model. Which directions and
/// attributes are allocated is part of a framework's footprint — the paper
/// notes Galois allocates only the direction(s) an algorithm needs while
/// GAP/GBBS/GraphIt always allocate both, inflating near-memory pressure.

namespace pmg::graph {

/// What to materialize on the machine and with which NUMA/page policy.
struct GraphLayout {
  memsim::PagePolicy policy;
  bool load_out_edges = true;
  bool load_in_edges = false;
  bool with_weights = false;
};

class CsrGraph {
 public:
  /// Copies `topo` into machine-resident arrays per `layout`. When
  /// `layout.with_weights` is set and `topo` has no weights, unit weights
  /// are used.
  CsrGraph(memsim::Machine* machine, const CsrTopology& topo,
           const GraphLayout& layout, std::string_view name);

  CsrGraph(const CsrGraph&) = delete;
  CsrGraph& operator=(const CsrGraph&) = delete;
  CsrGraph(CsrGraph&&) = default;
  CsrGraph& operator=(CsrGraph&&) = default;

  uint64_t num_vertices() const { return num_vertices_; }
  uint64_t num_edges() const { return num_edges_; }
  const GraphLayout& layout() const { return layout_; }
  memsim::Machine& machine() const { return *machine_; }

  // --- Costed topology accessors (ThreadId = accessing virtual thread) ---

  /// [first, last) out-edge ids of `v`.
  std::pair<EdgeId, EdgeId> OutRange(ThreadId t, VertexId v) const {
    return {out_index_.Get(t, v), out_index_.Get(t, v + 1)};
  }
  VertexId OutDst(ThreadId t, EdgeId e) const { return out_dst_.Get(t, e); }
  uint32_t OutWeight(ThreadId t, EdgeId e) const {
    return out_weight_.valid() ? out_weight_.Get(t, e) : 1;
  }

  std::pair<EdgeId, EdgeId> InRange(ThreadId t, VertexId v) const {
    return {in_index_.Get(t, v), in_index_.Get(t, v + 1)};
  }
  VertexId InSrc(ThreadId t, EdgeId e) const { return in_src_.Get(t, e); }
  uint32_t InWeight(ThreadId t, EdgeId e) const {
    return in_weight_.valid() ? in_weight_.Get(t, e) : 1;
  }

  bool has_out_edges() const { return out_index_.valid(); }
  bool has_in_edges() const { return in_index_.valid(); }
  bool has_weights() const { return out_weight_.valid() || in_weight_.valid(); }

  /// Applies `fn(t, dst, weight)` to each out-edge of `v` (costed).
  template <typename Fn>
  void ForEachOutEdge(ThreadId t, VertexId v, Fn&& fn) const {
    const auto [first, last] = OutRange(t, v);
    for (EdgeId e = first; e < last; ++e) {
      fn(t, OutDst(t, e), out_weight_.valid() ? out_weight_.Get(t, e) : 1u);
    }
  }

  /// Applies `fn(t, src, weight)` to each in-edge of `v` (costed).
  template <typename Fn>
  void ForEachInEdge(ThreadId t, VertexId v, Fn&& fn) const {
    const auto [first, last] = InRange(t, v);
    for (EdgeId e = first; e < last; ++e) {
      fn(t, InSrc(t, e), in_weight_.valid() ? in_weight_.Get(t, e) : 1u);
    }
  }

  // --- Uncosted accessors for verification/setup ---

  uint64_t RawOutDegree(VertexId v) const {
    return out_index_[v + 1] - out_index_[v];
  }
  VertexId RawOutDst(EdgeId e) const { return out_dst_[e]; }
  uint64_t RawOutIndex(VertexId v) const { return out_index_[v]; }

  /// Touches all resident arrays with a blocked costed sweep, mapping
  /// pages under the layout's placement policy before measurement (the
  /// paper excludes construction from reported times, but the pages must
  /// exist somewhere).
  void Prefault(uint32_t threads);

 private:
  memsim::Machine* machine_ = nullptr;
  GraphLayout layout_;
  uint64_t num_vertices_ = 0;
  uint64_t num_edges_ = 0;
  runtime::NumaArray<uint64_t> out_index_;
  runtime::NumaArray<VertexId> out_dst_;
  runtime::NumaArray<uint32_t> out_weight_;
  runtime::NumaArray<uint64_t> in_index_;
  runtime::NumaArray<VertexId> in_src_;
  runtime::NumaArray<uint32_t> in_weight_;
};

}  // namespace pmg::graph

#endif  // PMG_GRAPH_CSR_GRAPH_H_
