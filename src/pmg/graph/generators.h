#ifndef PMG_GRAPH_GENERATORS_H_
#define PMG_GRAPH_GENERATORS_H_

#include <cstdint>

#include "pmg/graph/topology.h"

/// \file generators.h
/// Deterministic graph generators. Two families matter to the paper:
///   - synthetic power-law graphs (rmat / kron, Table 3's rmat32 and
///     kron30), which have tiny diameters; and
///   - real-world web crawls (clueweb12, uk14, wdc12), which have large
///     diameters (500-5000) and heavy-tailed in-degrees. WebCrawl()
///     synthesizes that structure: a long chain of scale-free communities
///     with sparse bridges and a few global super-hubs.
/// Section 5's thesis is exactly that conclusions drawn from the first
/// family do not transfer to the second.

namespace pmg::graph {

/// R-MAT generator with the graph500 partition probabilities
/// (a=0.57, b=0.19, c=0.19, d=0.05). 2^scale vertices,
/// edge_factor * 2^scale edges.
CsrTopology Rmat(uint32_t scale, uint32_t edge_factor, uint64_t seed,
                 double a = 0.57, double b = 0.19, double c = 0.19);

/// Kronecker generator (graph500 kron): same recursive family as R-MAT
/// but with symmetric noise per level, yielding kron30-like structure.
CsrTopology Kron(uint32_t scale, uint32_t edge_factor, uint64_t seed);

/// Uniform random directed multigraph.
CsrTopology ErdosRenyi(uint64_t vertices, uint64_t edges, uint64_t seed);

/// Parameters of the synthetic web-crawl generator.
struct WebCrawlParams {
  uint64_t vertices = 100000;
  uint32_t avg_out_degree = 20;
  /// Communities chained on a path with sparse bridges.
  uint32_t communities = 64;
  /// Bridge edges between adjacent communities.
  uint32_t bridge_edges = 2;
  /// Vertices that act as global super-hubs with huge in-degree
  /// (clueweb12's max in-degree is 75M on 978M vertices).
  uint32_t hubs = 4;
  /// Fraction (percent) of edges pointing at hubs.
  uint32_t hub_percent = 4;
  /// Depth of the deep link structure hanging off the last community.
  /// Real crawls owe their estimated diameters (500-5274, Table 3) to such
  /// structures; the generated graph's diameter is roughly this value.
  uint64_t tail_length = 1000;
  /// Width of each tail level: a BFS walking the tail carries a frontier
  /// of about this many vertices per round (real crawl levels are sparse
  /// but not singletons). tail_length * tail_width must be < vertices / 2.
  uint64_t tail_width = 8;
  uint64_t seed = 1;
};

/// High-diameter scale-free web-crawl-like graph (see WebCrawlParams).
CsrTopology WebCrawl(const WebCrawlParams& params);

/// Dense-cluster protein-similarity-like graph (iso_m100: avg degree 896,
/// diameter ~83): cliques-ish clusters with a sparse backbone.
CsrTopology ProteinCluster(uint32_t clusters, uint32_t cluster_size,
                           uint32_t intra_degree, uint64_t seed);

// Small deterministic shapes used heavily by tests.
CsrTopology Path(uint64_t vertices);            // 0 -> 1 -> ... -> n-1
CsrTopology Cycle(uint64_t vertices);           // directed ring
CsrTopology Star(uint64_t leaves);              // 0 -> 1..leaves
CsrTopology Complete(uint64_t vertices);        // all ordered pairs
CsrTopology Grid2d(uint64_t rows, uint64_t cols);  // 4-neighbour, both dirs

}  // namespace pmg::graph

#endif  // PMG_GRAPH_GENERATORS_H_
