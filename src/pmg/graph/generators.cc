#include "pmg/graph/generators.h"

#include <algorithm>

#include "pmg/common/check.h"

namespace pmg::graph {

namespace {

/// Deterministic 64-bit PRNG (xorshift128+); avoids libstdc++ distribution
/// differences so generated graphs are identical everywhere.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    s0_ = seed * 0x9e3779b97f4a7c15ull + 1;
    s1_ = (seed ^ 0xda942042e4dd58b5ull) * 0x2545f4914f6cdd1dull + 1;
    for (int i = 0; i < 8; ++i) Next();
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform in [0, n).
  uint64_t Below(uint64_t n) { return n == 0 ? 0 : Next() % n; }

  /// Uniform in [0, 1).
  double Unit() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  uint64_t s0_;
  uint64_t s1_;
};

CsrTopology RmatFamily(uint32_t scale, uint32_t edge_factor, uint64_t seed,
                       double a, double b, double c, double noise) {
  PMG_CHECK(scale >= 1 && scale < 40);
  const uint64_t n = uint64_t{1} << scale;
  const uint64_t m = n * edge_factor;
  Rng rng(seed);
  EdgeList edges;
  edges.reserve(m);
  for (uint64_t e = 0; e < m; ++e) {
    // Re-descend with one RNG: src and dst bits come from the same walk.
    VertexId src = 0;
    VertexId dst = 0;
    double aa = a;
    double bb = b;
    double cc = c;
    for (uint32_t level = 0; level < scale; ++level) {
      const double r = rng.Unit();
      uint32_t sb = 0;
      uint32_t db = 0;
      if (r < aa) {
      } else if (r < aa + bb) {
        db = 1;
      } else if (r < aa + bb + cc) {
        sb = 1;
      } else {
        sb = 1;
        db = 1;
      }
      src = (src << 1) | sb;
      dst = (dst << 1) | db;
      if (noise > 0) {
        const double mu = (rng.Unit() - 0.5) * noise;
        aa = a + mu;
        bb = b - mu / 3;
        cc = c - mu / 3;
      }
    }
    edges.push_back({src, dst, 1});
  }
  return BuildCsr(n, edges, /*keep_weights=*/false);
}

}  // namespace

CsrTopology Rmat(uint32_t scale, uint32_t edge_factor, uint64_t seed,
                 double a, double b, double c) {
  return RmatFamily(scale, edge_factor, seed, a, b, c, /*noise=*/0.0);
}

CsrTopology Kron(uint32_t scale, uint32_t edge_factor, uint64_t seed) {
  return RmatFamily(scale, edge_factor, seed, 0.57, 0.19, 0.19,
                    /*noise=*/0.1);
}

CsrTopology ErdosRenyi(uint64_t vertices, uint64_t edges, uint64_t seed) {
  PMG_CHECK(vertices >= 1);
  Rng rng(seed);
  EdgeList list;
  list.reserve(edges);
  for (uint64_t e = 0; e < edges; ++e) {
    list.push_back({rng.Below(vertices), rng.Below(vertices), 1});
  }
  return BuildCsr(vertices, list, false);
}

CsrTopology WebCrawl(const WebCrawlParams& p) {
  PMG_CHECK(p.communities >= 1);
  PMG_CHECK(p.avg_out_degree >= 2);
  PMG_CHECK(p.tail_width >= 1);
  PMG_CHECK(p.tail_length * p.tail_width < p.vertices / 2);
  Rng rng(p.seed);
  // The last tail_length * tail_width ids form the deep structure; the
  // rest are the community-structured core.
  const uint64_t n = p.vertices - p.tail_length * p.tail_width;
  PMG_CHECK(n >= p.communities);
  const uint64_t k = p.communities;
  const uint64_t comm_size = n / k;  // last community absorbs the remainder
  EdgeList edges;
  edges.reserve(n * p.avg_out_degree);

  auto community_of = [&](VertexId v) {
    const uint64_t c = v / comm_size;
    return c >= k ? k - 1 : c;
  };
  auto community_begin = [&](uint64_t c) { return c * comm_size; };
  auto community_size = [&](uint64_t c) {
    return c == k - 1 ? n - (k - 1) * comm_size : comm_size;
  };
  auto hub_of = [&](uint64_t c) { return community_begin(c); };

  std::vector<VertexId> global_hubs;
  for (uint32_t h = 0; h < p.hubs; ++h) {
    global_hubs.push_back(hub_of((uint64_t{h} * k) / p.hubs));
  }

  for (VertexId v = 0; v < n; ++v) {
    const uint64_t c = community_of(v);
    const uint64_t cb = community_begin(c);
    const uint64_t cs = community_size(c);
    if (v == hub_of(c)) {
      // The community hub links to every member: reachability within a
      // community is one hop, and hubs carry the max out-degree.
      for (VertexId u = cb + 1; u < cb + cs; ++u) edges.push_back({v, u, 1});
      continue;
    }
    // Every vertex links to its community hub (navigational backbone).
    edges.push_back({v, hub_of(c), 1});
    const uint64_t deg = 1 + rng.Below(2 * (p.avg_out_degree - 1));
    for (uint64_t d = 0; d < deg; ++d) {
      if (rng.Below(100) < p.hub_percent && !global_hubs.empty()) {
        edges.push_back({v, global_hubs[rng.Below(global_hubs.size())], 1});
        continue;
      }
      // Skewed community-internal target (popular pages attract links).
      const double r = rng.Unit();
      const uint64_t off = static_cast<uint64_t>(r * r * cs);
      edges.push_back({v, cb + (off >= cs ? cs - 1 : off), 1});
    }
  }
  // Sparse bridges chain the communities; both directions keep the whole
  // crawl mutually reachable with ~3 hops per community step.
  for (uint64_t c = 0; c + 1 < k; ++c) {
    for (uint32_t b = 0; b < p.bridge_edges; ++b) {
      const VertexId u = community_begin(c) + rng.Below(community_size(c));
      const VertexId w =
          community_begin(c + 1) + rng.Below(community_size(c + 1));
      edges.push_back({u, w, 1});
      edges.push_back({w, u, 1});
    }
  }
  // Deep link structure (pagination tail): tail_length levels of
  // tail_width pages each; every page links to its successor level's
  // corresponding page plus one random page there. This is what gives
  // real crawls their multi-thousand estimated diameters, the long
  // sparse-frontier phase that distinguishes dense from sparse worklist
  // scheduling, and — because each level's handful of vertices scatter
  // across id space under permutation — what defeats out-of-core
  // block-granularity selective scheduling.
  if (p.tail_length > 0) {
    const uint64_t w = p.tail_width;
    auto tail_vertex = [&](uint64_t level, uint64_t i) {
      return n + level * w + i;
    };
    for (uint64_t i = 0; i < w; ++i) {
      edges.push_back({hub_of(k - 1), tail_vertex(0, i), 1});
    }
    for (uint64_t level = 0; level + 1 < p.tail_length; ++level) {
      for (uint64_t i = 0; i < w; ++i) {
        edges.push_back({tail_vertex(level, i), tail_vertex(level + 1, i), 1});
        edges.push_back(
            {tail_vertex(level, i), tail_vertex(level + 1, rng.Below(w)), 1});
      }
    }
  }
  return BuildCsr(p.vertices, edges, false);
}

CsrTopology ProteinCluster(uint32_t clusters, uint32_t cluster_size,
                           uint32_t intra_degree, uint64_t seed) {
  PMG_CHECK(clusters >= 1 && cluster_size >= 2);
  Rng rng(seed);
  const uint64_t n = uint64_t{clusters} * cluster_size;
  EdgeList edges;
  edges.reserve(n * (intra_degree + 1) * 2);
  for (uint64_t c = 0; c < clusters; ++c) {
    const uint64_t cb = c * cluster_size;
    for (uint64_t i = 0; i < cluster_size; ++i) {
      const VertexId v = cb + i;
      for (uint32_t d = 0; d < intra_degree; ++d) {
        VertexId u = cb + rng.Below(cluster_size);
        if (u == v) u = cb + (i + 1) % cluster_size;
        edges.push_back({v, u, 1});
        edges.push_back({u, v, 1});
      }
    }
    if (c + 1 < clusters) {
      // Backbone: a couple of undirected edges to the next cluster.
      for (int b = 0; b < 2; ++b) {
        const VertexId u = cb + rng.Below(cluster_size);
        const VertexId w = cb + cluster_size + rng.Below(cluster_size);
        edges.push_back({u, w, 1});
        edges.push_back({w, u, 1});
      }
    }
  }
  return BuildCsr(n, edges, false);
}

CsrTopology Path(uint64_t vertices) {
  EdgeList edges;
  for (VertexId v = 0; v + 1 < vertices; ++v) edges.push_back({v, v + 1, 1});
  return BuildCsr(vertices, edges, false);
}

CsrTopology Cycle(uint64_t vertices) {
  EdgeList edges;
  for (VertexId v = 0; v < vertices; ++v) {
    edges.push_back({v, (v + 1) % vertices, 1});
  }
  return BuildCsr(vertices, edges, false);
}

CsrTopology Star(uint64_t leaves) {
  EdgeList edges;
  for (VertexId v = 1; v <= leaves; ++v) edges.push_back({0, v, 1});
  return BuildCsr(leaves + 1, edges, false);
}

CsrTopology Complete(uint64_t vertices) {
  EdgeList edges;
  for (VertexId u = 0; u < vertices; ++u) {
    for (VertexId v = 0; v < vertices; ++v) {
      if (u != v) edges.push_back({u, v, 1});
    }
  }
  return BuildCsr(vertices, edges, false);
}

CsrTopology Grid2d(uint64_t rows, uint64_t cols) {
  EdgeList edges;
  auto id = [&](uint64_t r, uint64_t c) { return r * cols + c; };
  for (uint64_t r = 0; r < rows; ++r) {
    for (uint64_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        edges.push_back({id(r, c), id(r, c + 1), 1});
        edges.push_back({id(r, c + 1), id(r, c), 1});
      }
      if (r + 1 < rows) {
        edges.push_back({id(r, c), id(r + 1, c), 1});
        edges.push_back({id(r + 1, c), id(r, c), 1});
      }
    }
  }
  return BuildCsr(rows * cols, edges, false);
}

}  // namespace pmg::graph
