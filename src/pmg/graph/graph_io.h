#ifndef PMG_GRAPH_GRAPH_IO_H_
#define PMG_GRAPH_GRAPH_IO_H_

#include <string>

#include "pmg/graph/topology.h"

/// \file graph_io.h
/// Binary CSR persistence (a .gr-like format) and text edge-list reading.
/// All functions return false on I/O or format errors (no exceptions).

namespace pmg::graph {

/// Binary format: magic "PMGR", u32 version, u64 n, u64 m, u32 flags
/// (bit 0: weights), then index[n+1], dst[m], and weight[m] if flagged.
bool SaveCsr(const CsrTopology& g, const std::string& path);

/// Loads a file written by SaveCsr. On failure returns false and leaves
/// `*out` unspecified.
bool LoadCsr(const std::string& path, CsrTopology* out);

/// Reads a whitespace-separated "src dst [weight]" edge list; lines
/// starting with '#' or '%' are comments. Vertex count is
/// max id + 1 unless `num_vertices` is nonzero.
bool ReadEdgeList(const std::string& path, uint64_t num_vertices,
                  CsrTopology* out);

/// Writes an edge list in the same text format.
bool WriteEdgeList(const CsrTopology& g, const std::string& path);

}  // namespace pmg::graph

#endif  // PMG_GRAPH_GRAPH_IO_H_
