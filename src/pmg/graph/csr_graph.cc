#include "pmg/graph/csr_graph.h"

#include <cstring>

#include "pmg/common/check.h"

namespace pmg::graph {

CsrGraph::CsrGraph(memsim::Machine* machine, const CsrTopology& topo,
                   const GraphLayout& layout, std::string_view name)
    : machine_(machine),
      layout_(layout),
      num_vertices_(topo.num_vertices),
      num_edges_(topo.NumEdges()) {
  PMG_CHECK(machine != nullptr);
  PMG_CHECK(layout.load_out_edges || layout.load_in_edges);
  const std::string base(name);

  if (layout.load_out_edges) {
    out_index_ = runtime::NumaArray<uint64_t>(
        machine, num_vertices_ + 1, layout.policy, base + ".out.index");
    out_dst_ = runtime::NumaArray<VertexId>(machine, std::max<uint64_t>(
                                                num_edges_, 1),
                                            layout.policy, base + ".out.dst");
    std::memcpy(out_index_.raw(), topo.index.data(),
                topo.index.size() * sizeof(uint64_t));
    if (num_edges_ > 0) {
      std::memcpy(out_dst_.raw(), topo.dst.data(),
                  num_edges_ * sizeof(VertexId));
    }
    if (layout.with_weights) {
      out_weight_ = runtime::NumaArray<uint32_t>(
          machine, std::max<uint64_t>(num_edges_, 1), layout.policy,
          base + ".out.w");
      for (uint64_t e = 0; e < num_edges_; ++e) {
        out_weight_.raw()[e] = topo.HasWeights() ? topo.weight[e] : 1;
      }
    }
  }

  if (layout.load_in_edges) {
    const CsrTopology t = Transpose(topo);
    in_index_ = runtime::NumaArray<uint64_t>(machine, num_vertices_ + 1,
                                             layout.policy, base + ".in.index");
    in_src_ = runtime::NumaArray<VertexId>(machine, std::max<uint64_t>(
                                               num_edges_, 1),
                                           layout.policy, base + ".in.src");
    std::memcpy(in_index_.raw(), t.index.data(),
                t.index.size() * sizeof(uint64_t));
    if (num_edges_ > 0) {
      std::memcpy(in_src_.raw(), t.dst.data(), num_edges_ * sizeof(VertexId));
    }
    if (layout.with_weights) {
      in_weight_ = runtime::NumaArray<uint32_t>(
          machine, std::max<uint64_t>(num_edges_, 1), layout.policy,
          base + ".in.w");
      for (uint64_t e = 0; e < num_edges_; ++e) {
        in_weight_.raw()[e] = t.HasWeights() ? t.weight[e] : 1;
      }
    }
  }
}

void CsrGraph::Prefault(uint32_t threads) {
  machine_->CloseEpochIfOpen();
  machine_->BeginEpoch(threads);
  auto touch = [&](auto& arr, size_t elem_bytes) {
    if (!arr.valid()) return;
    const uint64_t total = arr.size() * elem_bytes;
    const uint64_t per = (total + threads - 1) / threads;
    for (ThreadId t = 0; t < threads; ++t) {
      const uint64_t lo = uint64_t{t} * per;
      if (lo >= total) break;
      const uint64_t len = std::min<uint64_t>(per, total - lo);
      machine_->AccessRange(t, arr.AddrOf(0) + lo, len, AccessType::kRead);
    }
  };
  touch(out_index_, sizeof(uint64_t));
  touch(out_dst_, sizeof(VertexId));
  touch(out_weight_, sizeof(uint32_t));
  touch(in_index_, sizeof(uint64_t));
  touch(in_src_, sizeof(VertexId));
  touch(in_weight_, sizeof(uint32_t));
  machine_->EndEpoch();
}

}  // namespace pmg::graph
