#include "pmg/graph/properties.h"

#include <cstdio>
#include <queue>
#include <vector>

namespace pmg::graph {

VertexId MaxOutDegreeVertex(const CsrTopology& g) {
  VertexId best = 0;
  uint64_t best_deg = 0;
  for (VertexId v = 0; v < g.num_vertices; ++v) {
    const uint64_t d = g.OutDegree(v);
    if (d > best_deg) {
      best_deg = d;
      best = v;
    }
  }
  return best;
}

std::pair<VertexId, uint64_t> FarthestVertex(const CsrTopology& g,
                                             const CsrTopology& t,
                                             VertexId start) {
  std::vector<uint64_t> dist(g.num_vertices, ~0ull);
  std::queue<VertexId> q;
  dist[start] = 0;
  q.push(start);
  VertexId far = start;
  uint64_t far_d = 0;
  while (!q.empty()) {
    const VertexId v = q.front();
    q.pop();
    auto visit = [&](VertexId u) {
      if (dist[u] == ~0ull) {
        dist[u] = dist[v] + 1;
        if (dist[u] > far_d) {
          far_d = dist[u];
          far = u;
        }
        q.push(u);
      }
    };
    for (uint64_t e = g.index[v]; e < g.index[v + 1]; ++e) visit(g.dst[e]);
    for (uint64_t e = t.index[v]; e < t.index[v + 1]; ++e) visit(t.dst[e]);
  }
  return {far, far_d};
}

GraphProperties ComputeProperties(const CsrTopology& g) {
  GraphProperties p;
  p.num_vertices = g.num_vertices;
  p.num_edges = g.NumEdges();
  p.avg_degree = g.num_vertices == 0
                     ? 0
                     : static_cast<double>(p.num_edges) / g.num_vertices;
  p.csr_bytes = CsrBytes(g);

  const CsrTopology t = Transpose(g);
  for (VertexId v = 0; v < g.num_vertices; ++v) {
    const uint64_t od = g.OutDegree(v);
    if (od > p.max_out_degree) {
      p.max_out_degree = od;
      p.max_out_degree_vertex = v;
    }
    p.max_in_degree = std::max(p.max_in_degree, t.OutDegree(v));
  }

  // Double-sweep: BFS from the max-degree vertex, then from the farthest
  // vertex found; the second eccentricity lower-bounds the diameter.
  if (g.num_vertices > 0) {
    const auto [far, d1] = FarthestVertex(g, t, p.max_out_degree_vertex);
    (void)d1;
    const auto [far2, d2] = FarthestVertex(g, t, far);
    (void)far2;
    p.estimated_diameter = d2;
  }
  return p;
}

std::string GraphProperties::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "|V|=%llu |E|=%llu |E|/|V|=%.1f maxDout=%llu maxDin=%llu "
                "est.diameter=%llu size=%.1fMB",
                static_cast<unsigned long long>(num_vertices),
                static_cast<unsigned long long>(num_edges), avg_degree,
                static_cast<unsigned long long>(max_out_degree),
                static_cast<unsigned long long>(max_in_degree),
                static_cast<unsigned long long>(estimated_diameter),
                csr_bytes / 1e6);
  return buf;
}

}  // namespace pmg::graph
