#ifndef PMG_GRAPH_PROPERTIES_H_
#define PMG_GRAPH_PROPERTIES_H_

#include <cstdint>
#include <string>

#include "pmg/graph/topology.h"

/// \file properties.h
/// Structural statistics of a graph — the columns of the paper's Table 3
/// (|V|, |E|, |E|/|V|, max out-/in-degree, estimated diameter, CSR size).

namespace pmg::graph {

struct GraphProperties {
  uint64_t num_vertices = 0;
  uint64_t num_edges = 0;
  double avg_degree = 0;
  uint64_t max_out_degree = 0;
  uint64_t max_in_degree = 0;
  VertexId max_out_degree_vertex = 0;
  /// Lower bound from a double-sweep BFS on the undirected view.
  uint64_t estimated_diameter = 0;
  uint64_t csr_bytes = 0;

  std::string ToString() const;
};

/// Computes all properties (runs two BFS sweeps; host-side, uncosted).
GraphProperties ComputeProperties(const CsrTopology& g);

/// Maximum out-degree vertex — the paper's source for bc/bfs/sssp.
VertexId MaxOutDegreeVertex(const CsrTopology& g);

/// BFS eccentricity lower bound: runs BFS on the undirected view from
/// `start`, returns the farthest vertex and its distance.
std::pair<VertexId, uint64_t> FarthestVertex(const CsrTopology& g,
                                             const CsrTopology& transpose,
                                             VertexId start);

}  // namespace pmg::graph

#endif  // PMG_GRAPH_PROPERTIES_H_
