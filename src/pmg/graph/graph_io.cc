#include "pmg/graph/graph_io.h"

#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

namespace pmg::graph {

namespace {

constexpr char kMagic[4] = {'P', 'M', 'G', 'R'};
constexpr uint32_t kVersion = 1;
constexpr uint32_t kFlagWeights = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

template <typename T>
bool WriteVec(std::FILE* f, const std::vector<T>& v) {
  if (v.empty()) return true;
  return std::fwrite(v.data(), sizeof(T), v.size(), f) == v.size();
}

template <typename T>
bool ReadVec(std::FILE* f, uint64_t count, std::vector<T>* v) {
  v->resize(count);
  if (count == 0) return true;
  return std::fread(v->data(), sizeof(T), count, f) == count;
}

}  // namespace

bool SaveCsr(const CsrTopology& g, const std::string& path) {
  File f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) return false;
  const uint64_t n = g.num_vertices;
  const uint64_t m = g.NumEdges();
  const uint32_t flags = g.HasWeights() ? kFlagWeights : 0;
  if (std::fwrite(kMagic, 1, 4, f.get()) != 4) return false;
  if (std::fwrite(&kVersion, sizeof(kVersion), 1, f.get()) != 1) return false;
  if (std::fwrite(&n, sizeof(n), 1, f.get()) != 1) return false;
  if (std::fwrite(&m, sizeof(m), 1, f.get()) != 1) return false;
  if (std::fwrite(&flags, sizeof(flags), 1, f.get()) != 1) return false;
  if (!WriteVec(f.get(), g.index)) return false;
  if (!WriteVec(f.get(), g.dst)) return false;
  if (g.HasWeights() && !WriteVec(f.get(), g.weight)) return false;
  return true;
}

bool LoadCsr(const std::string& path, CsrTopology* out) {
  File f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr || out == nullptr) return false;
  char magic[4];
  uint32_t version = 0;
  uint64_t n = 0;
  uint64_t m = 0;
  uint32_t flags = 0;
  if (std::fread(magic, 1, 4, f.get()) != 4) return false;
  if (std::memcmp(magic, kMagic, 4) != 0) return false;
  if (std::fread(&version, sizeof(version), 1, f.get()) != 1) return false;
  if (version != kVersion) return false;
  if (std::fread(&n, sizeof(n), 1, f.get()) != 1) return false;
  if (std::fread(&m, sizeof(m), 1, f.get()) != 1) return false;
  if (std::fread(&flags, sizeof(flags), 1, f.get()) != 1) return false;
  out->num_vertices = n;
  if (!ReadVec(f.get(), n + 1, &out->index)) return false;
  if (!ReadVec(f.get(), m, &out->dst)) return false;
  out->weight.clear();
  if ((flags & kFlagWeights) != 0 &&
      !ReadVec(f.get(), m, &out->weight)) {
    return false;
  }
  // Sanity: index must be monotone and end at m.
  if (out->index.empty() || out->index.front() != 0 ||
      out->index.back() != m) {
    return false;
  }
  for (size_t i = 1; i < out->index.size(); ++i) {
    if (out->index[i] < out->index[i - 1]) return false;
  }
  for (VertexId d : out->dst) {
    if (d >= n) return false;
  }
  return true;
}

bool ReadEdgeList(const std::string& path, uint64_t num_vertices,
                  CsrTopology* out) {
  File f(std::fopen(path.c_str(), "r"));
  if (f == nullptr || out == nullptr) return false;
  EdgeList edges;
  uint64_t max_id = 0;
  bool any_weight = false;
  char line[256];
  while (std::fgets(line, sizeof(line), f.get()) != nullptr) {
    if (line[0] == '#' || line[0] == '%' || line[0] == '\n') continue;
    unsigned long long s = 0;
    unsigned long long d = 0;
    unsigned long long w = 1;
    const int got = std::sscanf(line, "%llu %llu %llu", &s, &d, &w);
    if (got < 2) return false;
    if (got >= 3) any_weight = true;
    edges.push_back({s, d, static_cast<uint32_t>(w)});
    max_id = std::max<uint64_t>(max_id, std::max<uint64_t>(s, d));
  }
  const uint64_t n =
      num_vertices != 0 ? num_vertices : (edges.empty() ? 0 : max_id + 1);
  for (const Edge& e : edges) {
    if (e.src >= n || e.dst >= n) return false;
  }
  *out = BuildCsr(n, edges, any_weight);
  return true;
}

bool WriteEdgeList(const CsrTopology& g, const std::string& path) {
  File f(std::fopen(path.c_str(), "w"));
  if (f == nullptr) return false;
  const bool w = g.HasWeights();
  for (VertexId v = 0; v < g.num_vertices; ++v) {
    for (uint64_t e = g.index[v]; e < g.index[v + 1]; ++e) {
      if (w) {
        std::fprintf(f.get(), "%llu %llu %u\n",
                     static_cast<unsigned long long>(v),
                     static_cast<unsigned long long>(g.dst[e]), g.weight[e]);
      } else {
        std::fprintf(f.get(), "%llu %llu\n",
                     static_cast<unsigned long long>(v),
                     static_cast<unsigned long long>(g.dst[e]));
      }
    }
  }
  return true;
}

}  // namespace pmg::graph
