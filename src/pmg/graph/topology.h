#ifndef PMG_GRAPH_TOPOLOGY_H_
#define PMG_GRAPH_TOPOLOGY_H_

#include <cstdint>
#include <vector>

#include "pmg/common/types.h"

/// \file topology.h
/// Host-side (uncosted) graph representation: edge lists and CSR topology.
/// Construction, generators, I/O and reference algorithms operate on these;
/// measured algorithms run on the machine-resident CsrGraph built from one.
/// The paper excludes graph loading and construction from reported times,
/// so host-side construction does not distort any experiment.

namespace pmg::graph {

/// One directed edge with an optional weight.
struct Edge {
  VertexId src = 0;
  VertexId dst = 0;
  uint32_t weight = 1;
};

using EdgeList = std::vector<Edge>;

/// Compressed Sparse Row adjacency (out-edges).
struct CsrTopology {
  uint64_t num_vertices = 0;
  /// index[v]..index[v+1) are v's out-edges. Size num_vertices + 1.
  std::vector<uint64_t> index;
  std::vector<VertexId> dst;
  /// Empty, or parallel to dst.
  std::vector<uint32_t> weight;

  uint64_t NumEdges() const { return dst.size(); }
  uint64_t OutDegree(VertexId v) const { return index[v + 1] - index[v]; }
  bool HasWeights() const { return !weight.empty(); }
};

/// Builds CSR from an edge list (vertices [0, n)). Preserves weights when
/// `keep_weights`; multi-edges and self-loops are preserved as-is.
CsrTopology BuildCsr(uint64_t num_vertices, const EdgeList& edges,
                     bool keep_weights);

/// Reverses every edge (weights follow).
CsrTopology Transpose(const CsrTopology& g);

/// Makes the graph undirected: adds the reverse of every edge, then
/// removes duplicate edges and self-loops. Used by tc and kcore.
CsrTopology Symmetrize(const CsrTopology& g);

/// Sorts every adjacency list by target id (required by tc intersection).
void SortAdjacency(CsrTopology* g);

/// Removes duplicate edges (keeping the first weight) and self-loops.
CsrTopology DedupAndDropSelfLoops(const CsrTopology& g);

/// Assigns deterministic pseudo-random weights in [1, max_weight] — the
/// paper's graphs are unweighted, weights are generated for sssp.
void AssignRandomWeights(CsrTopology* g, uint32_t max_weight, uint64_t seed);

/// Bytes of the CSR form (index + dst + weights if present): the "size on
/// disk" figure of Table 3.
uint64_t CsrBytes(const CsrTopology& g);

/// Renames vertices by the permutation `perm` (new id of v = perm[v]).
/// Used by metamorphic relabeling tests.
CsrTopology Relabel(const CsrTopology& g, const std::vector<VertexId>& perm);

}  // namespace pmg::graph

#endif  // PMG_GRAPH_TOPOLOGY_H_
