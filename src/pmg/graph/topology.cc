#include "pmg/graph/topology.h"

#include <algorithm>
#include <numeric>

#include "pmg/common/check.h"

namespace pmg::graph {

namespace {

uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

CsrTopology BuildCsr(uint64_t num_vertices, const EdgeList& edges,
                     bool keep_weights) {
  CsrTopology g;
  g.num_vertices = num_vertices;
  g.index.assign(num_vertices + 1, 0);
  for (const Edge& e : edges) {
    PMG_CHECK(e.src < num_vertices && e.dst < num_vertices);
    ++g.index[e.src + 1];
  }
  for (uint64_t v = 0; v < num_vertices; ++v) g.index[v + 1] += g.index[v];
  g.dst.resize(edges.size());
  if (keep_weights) g.weight.resize(edges.size());
  std::vector<uint64_t> cursor(g.index.begin(), g.index.end() - 1);
  for (const Edge& e : edges) {
    const uint64_t slot = cursor[e.src]++;
    g.dst[slot] = e.dst;
    if (keep_weights) g.weight[slot] = e.weight;
  }
  return g;
}

CsrTopology Transpose(const CsrTopology& g) {
  CsrTopology t;
  t.num_vertices = g.num_vertices;
  t.index.assign(g.num_vertices + 1, 0);
  for (VertexId d : g.dst) ++t.index[d + 1];
  for (uint64_t v = 0; v < g.num_vertices; ++v) t.index[v + 1] += t.index[v];
  t.dst.resize(g.dst.size());
  const bool w = g.HasWeights();
  if (w) t.weight.resize(g.dst.size());
  std::vector<uint64_t> cursor(t.index.begin(), t.index.end() - 1);
  for (uint64_t v = 0; v < g.num_vertices; ++v) {
    for (uint64_t e = g.index[v]; e < g.index[v + 1]; ++e) {
      const uint64_t slot = cursor[g.dst[e]]++;
      t.dst[slot] = v;
      if (w) t.weight[slot] = g.weight[e];
    }
  }
  return t;
}

CsrTopology Symmetrize(const CsrTopology& g) {
  EdgeList edges;
  edges.reserve(2 * g.dst.size());
  const bool w = g.HasWeights();
  for (uint64_t v = 0; v < g.num_vertices; ++v) {
    for (uint64_t e = g.index[v]; e < g.index[v + 1]; ++e) {
      const uint32_t wt = w ? g.weight[e] : 1;
      edges.push_back({v, g.dst[e], wt});
      edges.push_back({g.dst[e], v, wt});
    }
  }
  CsrTopology s = BuildCsr(g.num_vertices, edges, w);
  return DedupAndDropSelfLoops(s);
}

void SortAdjacency(CsrTopology* g) {
  PMG_CHECK(g != nullptr);
  const bool w = g->HasWeights();
  for (uint64_t v = 0; v < g->num_vertices; ++v) {
    const uint64_t lo = g->index[v];
    const uint64_t hi = g->index[v + 1];
    if (!w) {
      std::sort(g->dst.begin() + lo, g->dst.begin() + hi);
      continue;
    }
    std::vector<std::pair<VertexId, uint32_t>> tmp;
    tmp.reserve(hi - lo);
    for (uint64_t e = lo; e < hi; ++e) tmp.emplace_back(g->dst[e], g->weight[e]);
    std::sort(tmp.begin(), tmp.end());
    for (uint64_t e = lo; e < hi; ++e) {
      g->dst[e] = tmp[e - lo].first;
      g->weight[e] = tmp[e - lo].second;
    }
  }
}

CsrTopology DedupAndDropSelfLoops(const CsrTopology& g) {
  CsrTopology out;
  out.num_vertices = g.num_vertices;
  out.index.assign(g.num_vertices + 1, 0);
  const bool w = g.HasWeights();
  std::vector<std::pair<VertexId, uint32_t>> tmp;
  // First pass: count surviving edges per vertex.
  std::vector<std::vector<std::pair<VertexId, uint32_t>>> kept(g.num_vertices);
  for (uint64_t v = 0; v < g.num_vertices; ++v) {
    tmp.clear();
    for (uint64_t e = g.index[v]; e < g.index[v + 1]; ++e) {
      if (g.dst[e] == v) continue;
      tmp.emplace_back(g.dst[e], w ? g.weight[e] : 1);
    }
    std::sort(tmp.begin(), tmp.end());
    tmp.erase(std::unique(tmp.begin(), tmp.end(),
                          [](const auto& a, const auto& b) {
                            return a.first == b.first;
                          }),
              tmp.end());
    kept[v] = tmp;
    out.index[v + 1] = out.index[v] + tmp.size();
  }
  out.dst.resize(out.index.back());
  if (w) out.weight.resize(out.index.back());
  for (uint64_t v = 0; v < g.num_vertices; ++v) {
    uint64_t slot = out.index[v];
    for (const auto& [d, wt] : kept[v]) {
      out.dst[slot] = d;
      if (w) out.weight[slot] = wt;
      ++slot;
    }
  }
  return out;
}

void AssignRandomWeights(CsrTopology* g, uint32_t max_weight, uint64_t seed) {
  PMG_CHECK(g != nullptr && max_weight >= 1);
  g->weight.resize(g->dst.size());
  for (uint64_t e = 0; e < g->dst.size(); ++e) {
    g->weight[e] = 1 + static_cast<uint32_t>(Mix(seed ^ e) % max_weight);
  }
}

uint64_t CsrBytes(const CsrTopology& g) {
  uint64_t bytes = g.index.size() * sizeof(uint64_t) +
                   g.dst.size() * sizeof(VertexId);
  if (g.HasWeights()) bytes += g.weight.size() * sizeof(uint32_t);
  return bytes;
}

CsrTopology Relabel(const CsrTopology& g, const std::vector<VertexId>& perm) {
  PMG_CHECK(perm.size() == g.num_vertices);
  EdgeList edges;
  edges.reserve(g.dst.size());
  const bool w = g.HasWeights();
  for (uint64_t v = 0; v < g.num_vertices; ++v) {
    for (uint64_t e = g.index[v]; e < g.index[v + 1]; ++e) {
      edges.push_back({perm[v], perm[g.dst[e]], w ? g.weight[e] : 1});
    }
  }
  return BuildCsr(g.num_vertices, edges, w);
}

}  // namespace pmg::graph
