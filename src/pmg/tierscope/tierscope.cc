#include "pmg/tierscope/tierscope.h"

#include <algorithm>
#include <cstdio>

#include "pmg/common/check.h"
#include "pmg/memsim/cost_model.h"

namespace pmg::tierscope {

using memsim::kTierSkipReasonCount;
using memsim::TierEpochSample;
using memsim::TierScanRecord;
using memsim::TierSkipReason;
using memsim::TierSkipReasonName;
using trace::JsonValue;
using trace::JsonWriter;

namespace {

/// Synthetic Chrome tid of the migration-daemon track; sits above the
/// trace layer's epoch track (1000000) so the two exports never collide.
constexpr uint64_t kTierDaemonTid = 2000000;

double ToUs(SimNs ns) { return static_cast<double>(ns) / 1000.0; }

bool ReadUInt(const JsonValue& v, const char* key, uint64_t* out,
              std::string* error) {
  const JsonValue* f = v.Find(key);
  if (f == nullptr || !f->IsNumber()) {
    if (error != nullptr) {
      *error = std::string("missing or non-numeric '") + key + "'";
    }
    return false;
  }
  *out = f->AsUInt();
  return true;
}

/// One channel side's transfer time, shared with the regret pricer.
double SideNs(const uint64_t counters[2][2],
              const memsim::ChannelBandwidth& bw) {
  auto xfer_ns = [](uint64_t bytes, double gbs) {
    return static_cast<double>(bytes) / gbs;  // 1 GB/s == 1 byte/ns
  };
  double ns = 0;
  ns += xfer_ns(counters[0][0], bw.seq_read_gbs);
  ns += xfer_ns(counters[0][1], bw.seq_write_gbs);
  ns += xfer_ns(counters[1][0], bw.rand_read_gbs);
  ns += xfer_ns(counters[1][1], bw.rand_write_gbs);
  return ns;
}

}  // namespace

SimNs JournalRegretNs(const whatif::CostJournal& journal) {
  double regret = 0;
  for (const whatif::EpochCost& e : journal.epochs) {
    for (const memsim::ChannelByteCounts& ch : e.channels) {
      regret += SideNs(ch.dram[1], journal.timings.dram_remote) -
                SideNs(ch.dram[1], journal.timings.dram_local);
      regret += SideNs(ch.pmm[1], journal.timings.pmm_remote) -
                SideNs(ch.pmm[1], journal.timings.pmm_local);
    }
  }
  if (regret < 0) regret = 0;
  return static_cast<SimNs>(regret);
}

// --- TierReport ---

void TierReport::AppendJson(JsonWriter* w) const {
  w->BeginObject();
  w->Key("schema_version").UInt(schema_version);
  w->Key("conserves").Bool(Conserves());
  w->Key("scans").UInt(scans);
  w->Key("candidates").UInt(candidates);
  w->Key("migrated_pages").UInt(migrated_pages);
  w->Key("migrated_bytes").UInt(migrated_bytes);
  w->Key("skipped").BeginObject();
  for (size_t r = 0; r < kTierSkipReasonCount; ++r) {
    w->Key(TierSkipReasonName(static_cast<TierSkipReason>(r)))
        .UInt(skipped[r]);
  }
  w->EndObject();
  w->Key("shootdowns").UInt(shootdowns);
  w->Key("placements").UInt(placements);
  w->Key("quarantines").UInt(quarantines);
  w->Key("allocs").UInt(allocs);
  w->Key("frees").UInt(frees);
  w->Key("epochs").UInt(epochs);
  w->Key("daemon").BeginObject();
  w->Key("scan_ns").UInt(daemon_scan_ns);
  w->Key("move_ns").UInt(daemon_move_ns);
  w->Key("remap_ns").UInt(daemon_remap_ns);
  w->Key("shootdown_ns").UInt(daemon_shootdown_ns);
  w->Key("scan_raw_ns").UInt(daemon_scan_raw_ns);
  w->Key("shootdown_raw_ns").UInt(daemon_shootdown_raw_ns);
  w->Key("epoch_daemon_ns").UInt(epoch_daemon_ns);
  w->EndObject();
  w->Key("machine").BeginObject();
  w->Key("migrations").UInt(stats_migrations);
  w->Key("migration_scans").UInt(stats_migration_scans);
  w->Key("tlb_shootdowns").UInt(stats_tlb_shootdowns);
  w->Key("minor_faults").UInt(stats_minor_faults);
  w->Key("pages_quarantined").UInt(stats_pages_quarantined);
  w->EndObject();
  w->Key("flows").BeginArray();
  for (const TierFlowRow& f : flows) {
    w->BeginObject();
    w->Key("from").UInt(f.from);
    w->Key("to").UInt(f.to);
    w->Key("pages").UInt(f.pages);
    w->Key("bytes").UInt(f.bytes);
    w->EndObject();
  }
  w->EndArray();
  w->Key("nodes").BeginArray();
  for (const TierNodeRow& n : nodes) {
    w->BeginObject();
    w->Key("node").UInt(n.node);
    w->Key("placements").UInt(n.placements);
    w->Key("migrations_in").UInt(n.migrations_in);
    w->Key("migrations_out").UInt(n.migrations_out);
    w->Key("bytes_used").UInt(n.bytes_used);
    w->Key("dram_bytes").UInt(n.dram_bytes);
    w->Key("pmm_bytes").UInt(n.pmm_bytes);
    w->EndObject();
  }
  w->EndArray();
  w->Key("dropped_scans").UInt(dropped_scans);
  w->Key("dropped_epochs").UInt(dropped_epochs);
  w->EndObject();
}

std::string TierReport::ToJson() const {
  JsonWriter w;
  AppendJson(&w);
  return w.str();
}

bool TierReport::FromJson(const JsonValue& v, TierReport* out,
                          std::string* error) {
  *out = TierReport();
  uint64_t version = 0;
  if (!ReadUInt(v, "schema_version", &version, error)) return false;
  if (version != kTierScopeSchemaVersion) {
    if (error != nullptr) {
      *error = "tierscope schema_version " + std::to_string(version) +
               " != supported " + std::to_string(kTierScopeSchemaVersion);
    }
    return false;
  }
  out->schema_version = static_cast<uint32_t>(version);
  if (!ReadUInt(v, "scans", &out->scans, error) ||
      !ReadUInt(v, "candidates", &out->candidates, error) ||
      !ReadUInt(v, "migrated_pages", &out->migrated_pages, error) ||
      !ReadUInt(v, "migrated_bytes", &out->migrated_bytes, error) ||
      !ReadUInt(v, "shootdowns", &out->shootdowns, error) ||
      !ReadUInt(v, "placements", &out->placements, error) ||
      !ReadUInt(v, "quarantines", &out->quarantines, error) ||
      !ReadUInt(v, "allocs", &out->allocs, error) ||
      !ReadUInt(v, "frees", &out->frees, error) ||
      !ReadUInt(v, "epochs", &out->epochs, error) ||
      !ReadUInt(v, "dropped_scans", &out->dropped_scans, error) ||
      !ReadUInt(v, "dropped_epochs", &out->dropped_epochs, error)) {
    return false;
  }
  const JsonValue* skipped = v.Find("skipped");
  if (skipped == nullptr) {
    if (error != nullptr) *error = "missing 'skipped'";
    return false;
  }
  for (size_t r = 0; r < kTierSkipReasonCount; ++r) {
    if (!ReadUInt(*skipped, TierSkipReasonName(static_cast<TierSkipReason>(r)),
                  &out->skipped[r], error)) {
      return false;
    }
  }
  const JsonValue* daemon = v.Find("daemon");
  if (daemon == nullptr) {
    if (error != nullptr) *error = "missing 'daemon'";
    return false;
  }
  if (!ReadUInt(*daemon, "scan_ns", &out->daemon_scan_ns, error) ||
      !ReadUInt(*daemon, "move_ns", &out->daemon_move_ns, error) ||
      !ReadUInt(*daemon, "remap_ns", &out->daemon_remap_ns, error) ||
      !ReadUInt(*daemon, "shootdown_ns", &out->daemon_shootdown_ns, error) ||
      !ReadUInt(*daemon, "scan_raw_ns", &out->daemon_scan_raw_ns, error) ||
      !ReadUInt(*daemon, "shootdown_raw_ns", &out->daemon_shootdown_raw_ns,
                error) ||
      !ReadUInt(*daemon, "epoch_daemon_ns", &out->epoch_daemon_ns, error)) {
    return false;
  }
  const JsonValue* machine = v.Find("machine");
  if (machine == nullptr) {
    if (error != nullptr) *error = "missing 'machine'";
    return false;
  }
  if (!ReadUInt(*machine, "migrations", &out->stats_migrations, error) ||
      !ReadUInt(*machine, "migration_scans", &out->stats_migration_scans,
                error) ||
      !ReadUInt(*machine, "tlb_shootdowns", &out->stats_tlb_shootdowns,
                error) ||
      !ReadUInt(*machine, "minor_faults", &out->stats_minor_faults, error) ||
      !ReadUInt(*machine, "pages_quarantined", &out->stats_pages_quarantined,
                error)) {
    return false;
  }
  const JsonValue* flows = v.Find("flows");
  if (flows == nullptr || flows->kind != JsonValue::Kind::kArray) {
    if (error != nullptr) *error = "missing 'flows' array";
    return false;
  }
  for (const JsonValue& fv : flows->array) {
    TierFlowRow f;
    uint64_t from = 0;
    uint64_t to = 0;
    if (!ReadUInt(fv, "from", &from, error) ||
        !ReadUInt(fv, "to", &to, error) ||
        !ReadUInt(fv, "pages", &f.pages, error) ||
        !ReadUInt(fv, "bytes", &f.bytes, error)) {
      return false;
    }
    f.from = static_cast<NodeId>(from);
    f.to = static_cast<NodeId>(to);
    out->flows.push_back(f);
  }
  const JsonValue* nodes = v.Find("nodes");
  if (nodes == nullptr || nodes->kind != JsonValue::Kind::kArray) {
    if (error != nullptr) *error = "missing 'nodes' array";
    return false;
  }
  for (const JsonValue& nv : nodes->array) {
    TierNodeRow n;
    uint64_t node = 0;
    if (!ReadUInt(nv, "node", &node, error) ||
        !ReadUInt(nv, "placements", &n.placements, error) ||
        !ReadUInt(nv, "migrations_in", &n.migrations_in, error) ||
        !ReadUInt(nv, "migrations_out", &n.migrations_out, error) ||
        !ReadUInt(nv, "bytes_used", &n.bytes_used, error) ||
        !ReadUInt(nv, "dram_bytes", &n.dram_bytes, error) ||
        !ReadUInt(nv, "pmm_bytes", &n.pmm_bytes, error)) {
      return false;
    }
    n.node = static_cast<NodeId>(node);
    out->nodes.push_back(n);
  }
  return true;
}

// --- MisplacementReport ---

void MisplacementReport::AppendJson(JsonWriter* w) const {
  w->BeginObject();
  w->Key("schema_version").UInt(schema_version);
  w->Key("regret_total_ns").UInt(regret_total_ns);
  w->Key("joined_pages").UInt(joined_pages);
  w->Key("unjoined_pages").UInt(unjoined_pages);
  w->Key("pages").BeginArray();
  for (const MisplacedPageRow& p : pages) {
    w->BeginObject();
    w->Key("structure").String(p.structure);
    w->Key("page_index").UInt(p.page_index);
    w->Key("page_bytes").UInt(p.page_bytes);
    w->Key("node").UInt(p.node);
    w->Key("wanted").UInt(p.wanted);
    w->Key("accesses").UInt(p.accesses);
    w->Key("remote_accesses").UInt(p.remote_accesses);
    w->Key("local_accesses").UInt(p.local_accesses);
    w->EndObject();
  }
  w->EndArray();
  w->Key("structures").BeginArray();
  for (const MisplacementStructureRow& s : structures) {
    w->BeginObject();
    w->Key("structure").String(s.structure);
    w->Key("misplaced_pages").UInt(s.misplaced_pages);
    w->Key("remote_accesses").UInt(s.remote_accesses);
    w->Key("regret_ns").UInt(s.regret_ns);
    w->EndObject();
  }
  w->EndArray();
  w->EndObject();
}

std::string MisplacementReport::ToJson() const {
  JsonWriter w;
  AppendJson(&w);
  return w.str();
}

bool MisplacementReport::FromJson(const JsonValue& v, MisplacementReport* out,
                                  std::string* error) {
  *out = MisplacementReport();
  uint64_t version = 0;
  if (!ReadUInt(v, "schema_version", &version, error)) return false;
  if (version != kTierScopeSchemaVersion) {
    if (error != nullptr) {
      *error = "misplacement schema_version " + std::to_string(version) +
               " != supported " + std::to_string(kTierScopeSchemaVersion);
    }
    return false;
  }
  out->schema_version = static_cast<uint32_t>(version);
  if (!ReadUInt(v, "regret_total_ns", &out->regret_total_ns, error) ||
      !ReadUInt(v, "joined_pages", &out->joined_pages, error) ||
      !ReadUInt(v, "unjoined_pages", &out->unjoined_pages, error)) {
    return false;
  }
  const JsonValue* pages = v.Find("pages");
  if (pages == nullptr || pages->kind != JsonValue::Kind::kArray) {
    if (error != nullptr) *error = "missing 'pages' array";
    return false;
  }
  for (const JsonValue& pv : pages->array) {
    MisplacedPageRow p;
    const JsonValue* name = pv.Find("structure");
    if (name == nullptr || name->kind != JsonValue::Kind::kString) {
      if (error != nullptr) *error = "page row without 'structure'";
      return false;
    }
    p.structure = name->string_value;
    uint64_t node = 0;
    uint64_t wanted = 0;
    if (!ReadUInt(pv, "page_index", &p.page_index, error) ||
        !ReadUInt(pv, "page_bytes", &p.page_bytes, error) ||
        !ReadUInt(pv, "node", &node, error) ||
        !ReadUInt(pv, "wanted", &wanted, error) ||
        !ReadUInt(pv, "accesses", &p.accesses, error) ||
        !ReadUInt(pv, "remote_accesses", &p.remote_accesses, error) ||
        !ReadUInt(pv, "local_accesses", &p.local_accesses, error)) {
      return false;
    }
    p.node = static_cast<NodeId>(node);
    p.wanted = static_cast<NodeId>(wanted);
    out->pages.push_back(p);
  }
  const JsonValue* structures = v.Find("structures");
  if (structures == nullptr ||
      structures->kind != JsonValue::Kind::kArray) {
    if (error != nullptr) *error = "missing 'structures' array";
    return false;
  }
  for (const JsonValue& sv : structures->array) {
    MisplacementStructureRow s;
    const JsonValue* name = sv.Find("structure");
    if (name == nullptr || name->kind != JsonValue::Kind::kString) {
      if (error != nullptr) *error = "structure row without 'structure'";
      return false;
    }
    s.structure = name->string_value;
    if (!ReadUInt(sv, "misplaced_pages", &s.misplaced_pages, error) ||
        !ReadUInt(sv, "remote_accesses", &s.remote_accesses, error) ||
        !ReadUInt(sv, "regret_ns", &s.regret_ns, error)) {
      return false;
    }
    out->structures.push_back(s);
  }
  return true;
}

// --- TierScope ---

TierScope::TierScope(const TierScopeOptions& options) : options_(options) {}

void TierScope::Attach(memsim::Machine* machine) {
  PMG_CHECK_MSG(machine_ == nullptr,
                "TierScope is already attached to a machine");
  PMG_CHECK(machine != nullptr);
  machine_ = machine;
  stats_base_ = machine->stats();
  machine->SetTierHook(this);
}

void TierScope::Detach() {
  PMG_CHECK_MSG(machine_ != nullptr, "TierScope is not attached");
  const memsim::MachineStats delta = machine_->stats() - stats_base_;
  done_migrations_ += delta.migrations;
  done_migration_scans_ += delta.migration_scans;
  done_tlb_shootdowns_ += delta.tlb_shootdowns;
  done_minor_faults_ += delta.minor_faults;
  done_pages_quarantined_ += delta.pages_quarantined;
  machine_->SetTierHook(nullptr);
  machine_ = nullptr;
}

void TierScope::OnTierAlloc(memsim::RegionId id, VirtAddr base,
                            uint64_t bytes, std::string_view name) {
  ++allocs_;
  RegionInfo& info = regions_[id];
  info.base = base;
  info.bytes = bytes;
  info.name = std::string(name);
  info.live = true;
}

void TierScope::OnTierFree(memsim::RegionId id) {
  ++frees_;
  auto it = regions_.find(id);
  if (it == regions_.end()) return;  // allocated before the scope attached
  it->second.live = false;
  pages_.erase(pages_.lower_bound(it->second.base),
               pages_.lower_bound(it->second.base + it->second.bytes));
}

void TierScope::OnTierPagePlaced(memsim::RegionId region, VirtAddr page_base,
                                 memsim::PageSizeClass cls, NodeId node,
                                 ThreadId /*toucher*/, SimNs /*at_ns*/) {
  ++placements_;
  PageState ps;
  ps.node = node;
  ps.cls = cls;
  ps.region = region;
  pages_[page_base] = ps;
  ++nodes_[node].placements;
}

void TierScope::OnTierCandidate(VirtAddr page_base, memsim::PageSizeClass /*cls*/,
                                NodeId /*node*/, NodeId wanted,
                                uint32_t remote_accesses,
                                uint32_t local_accesses) {
  ++pending_candidates_;
  auto it = pages_.find(page_base);
  if (it == pages_.end()) return;  // placed before the scope attached
  it->second.remote_accesses += remote_accesses;
  it->second.local_accesses += local_accesses;
  it->second.wanted = wanted;
  it->second.ever_candidate = true;
}

void TierScope::OnTierMigrated(VirtAddr page_base, memsim::PageSizeClass /*cls*/,
                               NodeId from, NodeId to, uint64_t bytes) {
  ++pending_migrated_pages_;
  pending_migrated_bytes_ += bytes;
  auto it = pages_.find(page_base);
  if (it != pages_.end()) it->second.node = to;
  TierFlowRow& flow = flows_[{from, to}];
  flow.from = from;
  flow.to = to;
  ++flow.pages;
  flow.bytes += bytes;
  ++nodes_[to].migrations_in;
  ++nodes_[from].migrations_out;
  TierFlowRow* pending = nullptr;
  for (TierFlowRow& f : pending_flows_) {
    if (f.from == from && f.to == to) {
      pending = &f;
      break;
    }
  }
  if (pending == nullptr) {
    pending_flows_.push_back(TierFlowRow{from, to, 0, 0});
    pending = &pending_flows_.back();
  }
  ++pending->pages;
  pending->bytes += bytes;
}

void TierScope::OnTierSkipped(VirtAddr /*page_base*/, memsim::PageSizeClass /*cls*/,
                              NodeId /*node*/, TierSkipReason reason) {
  PMG_CHECK(reason < TierSkipReason::kCount);
  ++pending_skipped_[static_cast<size_t>(reason)];
}

void TierScope::OnTierScan(const TierScanRecord& scan) {
  // The emit-time conservation law: the scan record the machine hands us
  // must equal, integer for integer, the per-page events it summarizes —
  // and every hot page must have received exactly one verdict.
  PMG_CHECK_MSG(scan.candidates == pending_candidates_,
                "tier scan record disagrees with candidate events");
  PMG_CHECK_MSG(scan.migrated_pages == pending_migrated_pages_,
                "tier scan record disagrees with migration events");
  PMG_CHECK_MSG(scan.migrated_bytes == pending_migrated_bytes_,
                "tier scan record disagrees with migrated bytes");
  uint64_t skipped_total = 0;
  for (size_t r = 0; r < kTierSkipReasonCount; ++r) {
    PMG_CHECK_MSG(scan.skipped[r] == pending_skipped_[r],
                  "tier scan record disagrees with skip events for '%s'",
                  TierSkipReasonName(static_cast<TierSkipReason>(r)));
    skipped_total += scan.skipped[r];
  }
  PMG_CHECK_MSG(scan.candidates == scan.migrated_pages + skipped_total,
                "a hot page escaped the migrate-or-skip accounting");

  ++scans_seen_;
  candidates_ += scan.candidates;
  migrated_pages_ += scan.migrated_pages;
  migrated_bytes_ += scan.migrated_bytes;
  for (size_t r = 0; r < kTierSkipReasonCount; ++r) {
    skipped_[r] += scan.skipped[r];
  }
  if (scan.migrated_pages > 0) ++shootdowns_;
  daemon_scan_ns_ += scan.scan_ns;
  daemon_move_ns_ += scan.move_ns;
  daemon_remap_ns_ += scan.remap_ns;
  daemon_shootdown_ns_ += scan.shootdown_ns;
  daemon_scan_raw_ns_ += scan.scan_raw_ns;
  daemon_shootdown_raw_ns_ += scan.shootdown_raw_ns;

  if (scans_.size() < options_.max_scans) {
    scans_.push_back(scan);
    scan_flows_.push_back(pending_flows_);
  } else {
    ++dropped_scans_;
  }
  pending_candidates_ = 0;
  pending_migrated_pages_ = 0;
  pending_migrated_bytes_ = 0;
  for (uint64_t& s : pending_skipped_) s = 0;
  pending_flows_.clear();
}

void TierScope::OnTierQuarantine(VirtAddr page_base, memsim::PageSizeClass /*cls*/,
                                 NodeId /*from*/, NodeId to, SimNs /*at_ns*/) {
  ++quarantines_;
  auto it = pages_.find(page_base);
  if (it != pages_.end()) it->second.node = to;
}

void TierScope::OnTierEpoch(const TierEpochSample& sample) {
  ++epochs_seen_;
  epoch_daemon_ns_ += sample.daemon_ns;
  for (size_t n = 0; n < sample.nodes.size(); ++n) {
    TierNodeRow& row = nodes_[static_cast<NodeId>(n)];
    row.bytes_used = sample.nodes[n].bytes_used;
    row.dram_bytes += sample.nodes[n].dram_bytes;
    row.pmm_bytes += sample.nodes[n].pmm_bytes;
  }
  if (epochs_.size() < options_.max_epochs) {
    epochs_.push_back(sample);
  } else {
    ++dropped_epochs_;
  }
}

const TierReport& TierScope::report() {
  report_ = TierReport();
  report_.scans = scans_seen_;
  report_.candidates = candidates_;
  report_.migrated_pages = migrated_pages_;
  report_.migrated_bytes = migrated_bytes_;
  for (size_t r = 0; r < kTierSkipReasonCount; ++r) {
    report_.skipped[r] = skipped_[r];
  }
  report_.shootdowns = shootdowns_;
  report_.placements = placements_;
  report_.quarantines = quarantines_;
  report_.allocs = allocs_;
  report_.frees = frees_;
  report_.epochs = epochs_seen_;
  report_.daemon_scan_ns = daemon_scan_ns_;
  report_.daemon_move_ns = daemon_move_ns_;
  report_.daemon_remap_ns = daemon_remap_ns_;
  report_.daemon_shootdown_ns = daemon_shootdown_ns_;
  report_.daemon_scan_raw_ns = daemon_scan_raw_ns_;
  report_.daemon_shootdown_raw_ns = daemon_shootdown_raw_ns_;
  report_.epoch_daemon_ns = epoch_daemon_ns_;
  report_.stats_migrations = done_migrations_;
  report_.stats_migration_scans = done_migration_scans_;
  report_.stats_tlb_shootdowns = done_tlb_shootdowns_;
  report_.stats_minor_faults = done_minor_faults_;
  report_.stats_pages_quarantined = done_pages_quarantined_;
  if (machine_ != nullptr) {
    const memsim::MachineStats delta = machine_->stats() - stats_base_;
    report_.stats_migrations += delta.migrations;
    report_.stats_migration_scans += delta.migration_scans;
    report_.stats_tlb_shootdowns += delta.tlb_shootdowns;
    report_.stats_minor_faults += delta.minor_faults;
    report_.stats_pages_quarantined += delta.pages_quarantined;
  }
  for (const auto& [key, flow] : flows_) {
    report_.flows.push_back(flow);
  }
  for (const auto& [node, row] : nodes_) {
    report_.nodes.push_back(row);
    report_.nodes.back().node = node;
  }
  report_.dropped_scans = dropped_scans_;
  report_.dropped_epochs = dropped_epochs_;
  return report_;
}

MisplacementReport TierScope::BuildMisplacementReport(
    const metrics::HeatReport* heat,
    const whatif::CostJournal* journal) const {
  MisplacementReport out;
  if (journal != nullptr) out.regret_total_ns = JournalRegretNs(*journal);
  if (heat == nullptr) return out;

  // Heat rows address pages by (structure name, page index); resolve the
  // name back to the region bases the scope saw allocated.
  std::map<std::string, std::vector<const RegionInfo*>> by_name;
  for (const auto& [id, info] : regions_) {
    by_name[info.name].push_back(&info);
  }

  struct StructAgg {
    uint64_t misplaced_pages = 0;
    uint64_t remote_accesses = 0;
  };
  std::map<std::string, StructAgg> per_structure;
  uint64_t total_remote = 0;

  for (const metrics::HotPageRow& hp : heat->hot_pages) {
    const PageState* ps = nullptr;
    auto names = by_name.find(hp.structure);
    if (names != by_name.end()) {
      for (const RegionInfo* info : names->second) {
        const VirtAddr addr = info->base + hp.page_index * hp.page_bytes;
        if (addr < info->base || addr >= info->base + info->bytes) continue;
        auto it = pages_.find(addr);
        if (it != pages_.end()) {
          ps = &it->second;
          break;
        }
      }
    }
    if (ps == nullptr) {
      ++out.unjoined_pages;
      continue;
    }
    ++out.joined_pages;
    // Misplaced == the daemon's own sampling says accesses want the page
    // elsewhere, and it still lives where it was.
    if (!ps->ever_candidate || ps->node == ps->wanted ||
        ps->remote_accesses <= ps->local_accesses) {
      continue;
    }
    MisplacedPageRow row;
    row.structure = hp.structure;
    row.page_index = hp.page_index;
    row.page_bytes = hp.page_bytes;
    row.node = ps->node;
    row.wanted = ps->wanted;
    row.accesses = hp.accesses;
    row.remote_accesses = ps->remote_accesses;
    row.local_accesses = ps->local_accesses;
    out.pages.push_back(row);
    StructAgg& agg = per_structure[hp.structure];
    ++agg.misplaced_pages;
    agg.remote_accesses += ps->remote_accesses;
    total_remote += ps->remote_accesses;
  }

  std::sort(out.pages.begin(), out.pages.end(),
            [](const MisplacedPageRow& a, const MisplacedPageRow& b) {
              if (a.remote_accesses != b.remote_accesses) {
                return a.remote_accesses > b.remote_accesses;
              }
              if (a.structure != b.structure) return a.structure < b.structure;
              return a.page_index < b.page_index;
            });
  if (out.pages.size() > options_.top_k) out.pages.resize(options_.top_k);

  for (const auto& [name, agg] : per_structure) {
    MisplacementStructureRow row;
    row.structure = name;
    row.misplaced_pages = agg.misplaced_pages;
    row.remote_accesses = agg.remote_accesses;
    if (total_remote > 0) {
      row.regret_ns = static_cast<SimNs>(
          static_cast<double>(out.regret_total_ns) *
          (static_cast<double>(agg.remote_accesses) /
           static_cast<double>(total_remote)));
    }
    out.structures.push_back(row);
  }
  std::sort(out.structures.begin(), out.structures.end(),
            [](const MisplacementStructureRow& a,
               const MisplacementStructureRow& b) {
              if (a.regret_ns != b.regret_ns) return a.regret_ns > b.regret_ns;
              return a.structure < b.structure;
            });
  return out;
}

void TierScope::AppendChromeEvents(JsonWriter* w) const {
  // Named daemon track beside the trace layer's epoch track.
  w->BeginObject();
  w->Key("name").String("thread_name");
  w->Key("ph").String("M");
  w->Key("pid").UInt(0);
  w->Key("tid").UInt(kTierDaemonTid);
  w->Key("args").BeginObject();
  w->Key("name").String("tier daemon");
  w->EndObject();
  w->EndObject();

  // Per-node occupancy counter tracks, one sample per retained epoch.
  for (const TierEpochSample& e : epochs_) {
    for (size_t n = 0; n < e.nodes.size(); ++n) {
      w->BeginObject();
      w->Key("name").String("node" + std::to_string(n) + " occupancy MB");
      w->Key("ph").String("C");
      w->Key("pid").UInt(0);
      w->Key("ts").Fixed(ToUs(e.start_ns), 3);
      w->Key("args").BeginObject();
      w->Key("used").Fixed(
          static_cast<double>(e.nodes[n].bytes_used) / (1024.0 * 1024.0), 3);
      w->EndObject();
      w->EndObject();
    }
  }

  // Daemon scan slices with the decision audit in args, plus migration
  // flow and shootdown instants.
  for (size_t i = 0; i < scans_.size(); ++i) {
    const TierScanRecord& s = scans_[i];
    const SimNs dur = s.scan_ns + s.move_ns + s.remap_ns + s.shootdown_ns;
    w->BeginObject();
    w->Key("name").String("scan " + std::to_string(s.scan_index));
    w->Key("ph").String("X");
    w->Key("pid").UInt(0);
    w->Key("tid").UInt(kTierDaemonTid);
    w->Key("ts").Fixed(ToUs(s.at_ns), 3);
    w->Key("dur").Fixed(ToUs(dur), 3);
    w->Key("args").BeginObject();
    w->Key("mapped_pages").UInt(s.mapped_pages);
    w->Key("candidates").UInt(s.candidates);
    w->Key("migrated_pages").UInt(s.migrated_pages);
    w->Key("migrated_bytes").UInt(s.migrated_bytes);
    for (size_t r = 0; r < kTierSkipReasonCount; ++r) {
      if (s.skipped[r] == 0) continue;
      w->Key(std::string("skipped ") +
             TierSkipReasonName(static_cast<TierSkipReason>(r)))
          .UInt(s.skipped[r]);
    }
    w->EndObject();
    w->EndObject();

    for (const TierFlowRow& f : scan_flows_[i]) {
      w->BeginObject();
      w->Key("name").String("migrate node" + std::to_string(f.from) +
                            "->node" + std::to_string(f.to));
      w->Key("ph").String("i");
      w->Key("s").String("g");
      w->Key("pid").UInt(0);
      w->Key("tid").UInt(kTierDaemonTid);
      w->Key("ts").Fixed(ToUs(s.at_ns), 3);
      w->Key("args").BeginObject();
      w->Key("pages").UInt(f.pages);
      w->Key("bytes").UInt(f.bytes);
      w->EndObject();
      w->EndObject();
    }

    if (s.shootdown_ns > 0) {
      w->BeginObject();
      w->Key("name").String("tlb-shootdown");
      w->Key("ph").String("i");
      w->Key("s").String("g");
      w->Key("pid").UInt(0);
      w->Key("tid").UInt(kTierDaemonTid);
      w->Key("ts").Fixed(ToUs(s.at_ns + s.scan_ns + s.move_ns + s.remap_ns),
                         3);
      w->Key("args").BeginObject();
      w->Key("ns").UInt(s.shootdown_ns);
      w->Key("pages").UInt(s.migrated_pages);
      w->EndObject();
      w->EndObject();
    }
  }
}

}  // namespace pmg::tierscope
