#ifndef PMG_TIERSCOPE_TIERSCOPE_H_
#define PMG_TIERSCOPE_TIERSCOPE_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "pmg/common/types.h"
#include "pmg/memsim/machine.h"
#include "pmg/memsim/tier_hook.h"
#include "pmg/metrics/heatmap.h"
#include "pmg/trace/json.h"
#include "pmg/trace/trace_session.h"
#include "pmg/whatif/journal.h"

/// \file tierscope.h
/// pmg::tierscope — placement and migration-decision observability for
/// the memory tiers. A TierScope attaches to a memsim::Machine as its
/// TierHook, collects the per-page placement stream (first-touch
/// placement, the daemon's candidate / migrate / skip-with-reason
/// verdicts, quarantines, frees) and the per-epoch tier time-series
/// (per-node occupancy, per-node channel bytes, daemon cost), and turns
/// them into
///   - a TierReport: the decision audit — scans, candidates, migrations,
///     skips by reason, the daemon cost split, a node-to-node migration
///     flow matrix, and a mirror of the machine's own counters so the
///     conservation law (audit == MachineStats, bit-exact) is checkable
///     from the report alone;
///   - a MisplacementReport: the PR-4 heatmap joined against live
///     placement, ranking pages that are hot on the wrong node, with a
///     "tiering regret" estimate priced from the PR-5 whatif journal's
///     per-channel bytes (what the interconnect traffic cost beyond
///     local-bandwidth pricing);
///   - Chrome-trace per-NUMA-node tracks (occupancy counters, daemon
///     scan slices, migration flow and shootdown instants) merged beside
///     the pmg::trace epoch tracks via ChromeEventSource;
///   - a versioned JSON report section (`pmg_run --tierscope=json`,
///     re-read by `pmg_explain --tiering`).
///
/// Attaching a scope never changes a simulated number: the machine's
/// tier seam is null-checked, and its only side effect is forcing
/// inline (non-host-parallel) pricing, which is byte-identical by the
/// phased-pricing contract (docs/determinism.md). The conservation law
/// is PMG_CHECKed at emit (every scan record must equal the per-page
/// events it summarizes) and re-derived independently in
/// tests/tierscope.

namespace pmg::tierscope {

/// Version stamp of every JSON document this layer emits.
inline constexpr uint32_t kTierScopeSchemaVersion = 1;

struct TierScopeOptions {
  /// Caps on retained per-scan / per-epoch records; beyond them events
  /// still aggregate into the report but drop out of the Chrome export
  /// (counted, never silent).
  uint64_t max_scans = 1ull << 16;
  uint64_t max_epochs = 1ull << 20;
  /// Top-K rows in the misplacement page table.
  size_t top_k = 32;
};

/// Pages that moved from one node to another, summed over the window.
struct TierFlowRow {
  NodeId from = 0;
  NodeId to = 0;
  uint64_t pages = 0;
  uint64_t bytes = 0;
};

/// Per-node placement activity and final occupancy.
struct TierNodeRow {
  NodeId node = 0;
  /// First-touch placements that landed here.
  uint64_t placements = 0;
  uint64_t migrations_in = 0;
  uint64_t migrations_out = 0;
  /// Bytes backed by frames on the node at the last observed epoch end.
  uint64_t bytes_used = 0;
  /// Channel traffic summed over observed epochs, by medium.
  uint64_t dram_bytes = 0;
  uint64_t pmm_bytes = 0;
};

/// The decision audit of everything the scope observed. The `stats_*`
/// mirror fields come from MachineStats deltas — an accounting path
/// independent of the event stream — so Conserves() proves the audit
/// complete without trusting the audit.
struct TierReport {
  uint32_t schema_version = kTierScopeSchemaVersion;

  // --- Audit totals (from the event stream) ---
  uint64_t scans = 0;
  uint64_t candidates = 0;
  uint64_t migrated_pages = 0;
  uint64_t migrated_bytes = 0;
  uint64_t skipped[memsim::kTierSkipReasonCount] = {};
  /// Scans that migrated at least one page (== batched TLB shootdowns).
  uint64_t shootdowns = 0;
  uint64_t placements = 0;
  uint64_t quarantines = 0;
  uint64_t allocs = 0;
  uint64_t frees = 0;
  uint64_t epochs = 0;
  /// Daemon cost split summed over scan records (priced values).
  SimNs daemon_scan_ns = 0;
  SimNs daemon_move_ns = 0;
  SimNs daemon_remap_ns = 0;
  SimNs daemon_shootdown_ns = 0;
  /// Raw (pre-pmm_kernel_factor) daemon inputs.
  SimNs daemon_scan_raw_ns = 0;
  SimNs daemon_shootdown_raw_ns = 0;
  /// Daemon time summed over epoch samples (must equal the scan split).
  SimNs epoch_daemon_ns = 0;

  // --- MachineStats mirror (independent accounting path) ---
  uint64_t stats_migrations = 0;
  uint64_t stats_migration_scans = 0;
  uint64_t stats_tlb_shootdowns = 0;
  uint64_t stats_minor_faults = 0;
  uint64_t stats_pages_quarantined = 0;

  /// Node-to-node migration flows, ordered (from asc, to asc).
  std::vector<TierFlowRow> flows;
  /// Per-node rows, ordered by node id.
  std::vector<TierNodeRow> nodes;

  /// Scan / epoch records dropped from the Chrome export by the caps.
  uint64_t dropped_scans = 0;
  uint64_t dropped_epochs = 0;

  uint64_t SkippedTotal() const {
    uint64_t sum = 0;
    for (uint64_t s : skipped) sum += s;
    return sum;
  }

  /// The conservation law: every decision the audit recorded is exactly
  /// one the machine counted, and vice versa.
  ///   - every hot page got exactly one verdict:
  ///       candidates == migrated_pages + sum(skipped)
  ///   - the audit saw every migration / scan / shootdown / placement /
  ///     quarantine the machine billed (bit-exact counter equality)
  ///   - the daemon time the epochs carried is exactly the per-scan
  ///     split: epoch_daemon_ns == scan + move + remap + shootdown.
  bool Conserves() const {
    return candidates == migrated_pages + SkippedTotal() &&
           migrated_pages == stats_migrations &&
           scans == stats_migration_scans &&
           shootdowns == stats_tlb_shootdowns &&
           placements == stats_minor_faults &&
           quarantines == stats_pages_quarantined &&
           epoch_daemon_ns == daemon_scan_ns + daemon_move_ns +
                                  daemon_remap_ns + daemon_shootdown_ns;
  }

  /// Appends this report as one JSON object to `w`.
  void AppendJson(trace::JsonWriter* w) const;
  /// Standalone versioned JSON document.
  std::string ToJson() const;
  /// Parses a report emitted by AppendJson (pmg_explain --tiering). On
  /// failure returns false with a one-line description in `*error`.
  static bool FromJson(const trace::JsonValue& v, TierReport* out,
                       std::string* error);
};

/// One hot page living on the wrong node: the heatmap says it is hot,
/// live placement says its accesses mostly come from another socket.
struct MisplacedPageRow {
  std::string structure;
  /// Page index within the structure, in units of `page_bytes`.
  uint64_t page_index = 0;
  uint64_t page_bytes = 0;
  /// Where the page lives vs where its accesses want it.
  NodeId node = 0;
  NodeId wanted = 0;
  /// Heatmap access count and the daemon's sampled locality split.
  uint64_t accesses = 0;
  uint64_t remote_accesses = 0;
  uint64_t local_accesses = 0;
};

struct MisplacementStructureRow {
  std::string structure;
  /// Hot pages of the structure currently placed off their wanted node.
  uint64_t misplaced_pages = 0;
  uint64_t remote_accesses = 0;
  /// Share of the global regret attributed to this structure
  /// (proportional to its sampled remote accesses).
  SimNs regret_ns = 0;
};

/// The heatmap-vs-placement join plus the journal-priced regret.
struct MisplacementReport {
  uint32_t schema_version = kTierScopeSchemaVersion;
  /// Hot pages on the wrong node, ranked (remote_accesses desc,
  /// structure asc, page_index asc).
  std::vector<MisplacedPageRow> pages;
  /// Per-structure attribution, ordered (regret desc, structure asc).
  std::vector<MisplacementStructureRow> structures;
  /// What remote-bandwidth pricing cost beyond pricing the same bytes at
  /// local bandwidth, summed over the journal's epochs. Zero without a
  /// journal.
  SimNs regret_total_ns = 0;
  /// Heatmap hot pages joined to a live placement vs not (freed regions,
  /// pre-attach allocations).
  uint64_t joined_pages = 0;
  uint64_t unjoined_pages = 0;

  void AppendJson(trace::JsonWriter* w) const;
  std::string ToJson() const;
  static bool FromJson(const trace::JsonValue& v, MisplacementReport* out,
                       std::string* error);
};

/// Prices the "tiering regret" of a recorded run: for every epoch's
/// per-socket channel bytes, the remote-side traffic priced at the
/// journal's remote bandwidth rows minus the same bytes priced at the
/// local rows. Deterministic summation order (epochs, then sockets).
SimNs JournalRegretNs(const whatif::CostJournal& journal);

/// Collects the placement-decision stream of one or more machine
/// attachments. Not copyable; must be detached before the machine dies.
class TierScope final : public memsim::TierHook,
                        public trace::ChromeEventSource {
 public:
  explicit TierScope(const TierScopeOptions& options = TierScopeOptions());

  TierScope(const TierScope&) = delete;
  TierScope& operator=(const TierScope&) = delete;

  /// Registers this scope as `machine`'s tier hook and snapshots its
  /// stats for the mirror counters.
  void Attach(memsim::Machine* machine);
  /// Folds the machine's stats delta into the mirror and unregisters.
  void Detach();
  bool attached() const { return machine_ != nullptr; }

  // TierHook:
  void OnTierAlloc(memsim::RegionId id, VirtAddr base, uint64_t bytes,
                   std::string_view name) override;
  void OnTierFree(memsim::RegionId id) override;
  void OnTierPagePlaced(memsim::RegionId region, VirtAddr page_base,
                        memsim::PageSizeClass cls, NodeId node, ThreadId toucher,
                        SimNs at_ns) override;
  void OnTierCandidate(VirtAddr page_base, memsim::PageSizeClass cls, NodeId node,
                       NodeId wanted, uint32_t remote_accesses,
                       uint32_t local_accesses) override;
  void OnTierMigrated(VirtAddr page_base, memsim::PageSizeClass cls, NodeId from,
                      NodeId to, uint64_t bytes) override;
  void OnTierSkipped(VirtAddr page_base, memsim::PageSizeClass cls, NodeId node,
                     memsim::TierSkipReason reason) override;
  void OnTierScan(const memsim::TierScanRecord& scan) override;
  void OnTierQuarantine(VirtAddr page_base, memsim::PageSizeClass cls, NodeId from,
                        NodeId to, SimNs at_ns) override;
  void OnTierEpoch(const memsim::TierEpochSample& sample) override;

  /// The decision audit (rebuilt on each call; includes the live
  /// machine's stats delta while attached).
  const TierReport& report();

  /// Joins `heat` (hot pages) against the scope's live placement and
  /// candidacy evidence; prices the regret from `journal`. Either input
  /// may be null (the corresponding section is empty / zero).
  MisplacementReport BuildMisplacementReport(
      const metrics::HeatReport* heat,
      const whatif::CostJournal* journal) const;

  // ChromeEventSource: per-node occupancy counters, daemon scan slices,
  // migration flow and shootdown instants.
  void AppendChromeEvents(trace::JsonWriter* w) const override;

  const std::vector<memsim::TierScanRecord>& scan_records() const {
    return scans_;
  }
  const std::vector<memsim::TierEpochSample>& epoch_samples() const {
    return epochs_;
  }

 private:
  struct RegionInfo {
    VirtAddr base = 0;
    uint64_t bytes = 0;
    std::string name;
    bool live = false;
  };
  /// What the scope believes about one live page, maintained purely from
  /// the event stream (tests diff it against the machine's page table).
  struct PageState {
    NodeId node = 0;
    memsim::PageSizeClass cls = memsim::PageSizeClass::k4K;
    memsim::RegionId region = 0;
    /// Sampled locality evidence accumulated over candidate events.
    uint64_t remote_accesses = 0;
    uint64_t local_accesses = 0;
    NodeId wanted = 0;
    bool ever_candidate = false;
  };

  TierScopeOptions options_;
  memsim::Machine* machine_ = nullptr;
  memsim::MachineStats stats_base_;

  /// Shadow placement, keyed by page base address. Ordered map: report
  /// building iterates it and output must be deterministic.
  std::map<VirtAddr, PageState> pages_;
  std::map<memsim::RegionId, RegionInfo> regions_;

  // --- Pending per-scan event counters, reconciled (PMG_CHECK) against
  // the TierScanRecord that closes the scan. ---
  uint64_t pending_candidates_ = 0;
  uint64_t pending_migrated_pages_ = 0;
  uint64_t pending_migrated_bytes_ = 0;
  uint64_t pending_skipped_[memsim::kTierSkipReasonCount] = {};
  std::vector<TierFlowRow> pending_flows_;

  // --- Aggregates ---
  uint64_t scans_seen_ = 0;
  uint64_t candidates_ = 0;
  uint64_t migrated_pages_ = 0;
  uint64_t migrated_bytes_ = 0;
  uint64_t skipped_[memsim::kTierSkipReasonCount] = {};
  uint64_t shootdowns_ = 0;
  uint64_t placements_ = 0;
  uint64_t quarantines_ = 0;
  uint64_t allocs_ = 0;
  uint64_t frees_ = 0;
  uint64_t epochs_seen_ = 0;
  SimNs daemon_scan_ns_ = 0;
  SimNs daemon_move_ns_ = 0;
  SimNs daemon_remap_ns_ = 0;
  SimNs daemon_shootdown_ns_ = 0;
  SimNs daemon_scan_raw_ns_ = 0;
  SimNs daemon_shootdown_raw_ns_ = 0;
  SimNs epoch_daemon_ns_ = 0;
  /// Mirror counters folded from detached machines.
  uint64_t done_migrations_ = 0;
  uint64_t done_migration_scans_ = 0;
  uint64_t done_tlb_shootdowns_ = 0;
  uint64_t done_minor_faults_ = 0;
  uint64_t done_pages_quarantined_ = 0;

  std::map<std::pair<NodeId, NodeId>, TierFlowRow> flows_;
  std::map<NodeId, TierNodeRow> nodes_;

  /// Retained records for the Chrome export; the flows of scan i are
  /// scan_flows_[i] (same truncation).
  std::vector<memsim::TierScanRecord> scans_;
  std::vector<std::vector<TierFlowRow>> scan_flows_;
  std::vector<memsim::TierEpochSample> epochs_;
  uint64_t dropped_scans_ = 0;
  uint64_t dropped_epochs_ = 0;

  TierReport report_;
};

}  // namespace pmg::tierscope

#endif  // PMG_TIERSCOPE_TIERSCOPE_H_
