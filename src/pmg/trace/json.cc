#include "pmg/trace/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "pmg/common/check.h"

namespace pmg::trace {

// --------------------------------------------------------------------------
// Writer
// --------------------------------------------------------------------------

void AppendEscaped(std::string* out, std::string_view value) {
  out->push_back('"');
  for (const char c : value) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void JsonWriter::OnValue() {
  PMG_CHECK_MSG(!done_, "writing past the end of the JSON document");
  if (stack_.empty()) {
    // Top-level value: exactly one allowed.
    done_ = true;
    return;
  }
  Frame& top = stack_.back();
  if (top.is_object) {
    PMG_CHECK_MSG(key_pending_, "object values need a Key() first");
    key_pending_ = false;
  } else {
    if (top.has_element) out_.push_back(',');
  }
  top.has_element = true;
}

void JsonWriter::Push(bool is_object) {
  stack_.push_back(Frame{false, is_object});
}

void JsonWriter::Pop(bool is_object) {
  PMG_CHECK_MSG(!stack_.empty() && stack_.back().is_object == is_object,
                "unbalanced JSON writer End call");
  PMG_CHECK_MSG(!key_pending_, "dangling Key() at container end");
  stack_.pop_back();
}

JsonWriter& JsonWriter::BeginObject() {
  OnValue();
  out_.push_back('{');
  Push(/*is_object=*/true);
  done_ = false;
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  Pop(/*is_object=*/true);
  out_.push_back('}');
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  OnValue();
  out_.push_back('[');
  Push(/*is_object=*/false);
  done_ = false;
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  Pop(/*is_object=*/false);
  out_.push_back(']');
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  PMG_CHECK_MSG(!stack_.empty() && stack_.back().is_object,
                "Key() outside an object");
  PMG_CHECK_MSG(!key_pending_, "two keys in a row");
  if (stack_.back().has_element) out_.push_back(',');
  stack_.back().has_element = true;
  AppendEscaped(&out_, key);
  out_.push_back(':');
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  OnValue();
  AppendEscaped(&out_, value);
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  OnValue();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  out_.append(buf);
  return *this;
}

JsonWriter& JsonWriter::UInt(uint64_t value) {
  OnValue();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(value));
  out_.append(buf);
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  OnValue();
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out_.append(buf);
  return *this;
}

JsonWriter& JsonWriter::Fixed(double value, int precision) {
  OnValue();
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  out_.append(buf);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  OnValue();
  out_.append(value ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::Null() {
  OnValue();
  out_.append("null");
  return *this;
}

// --------------------------------------------------------------------------
// Parser
// --------------------------------------------------------------------------

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  bool Run(JsonValue* out) {
    SkipSpace();
    if (!ParseValue(out)) return false;
    SkipSpace();
    if (pos_ != text_.size()) return Fail("trailing characters");
    return true;
  }

 private:
  bool Fail(const char* what) {
    if (error_ != nullptr) {
      char buf[128];
      std::snprintf(buf, sizeof(buf), "%s at offset %zu", what, pos_);
      *error_ = buf;
    }
    return false;
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return Fail("bad literal");
    }
    pos_ += word.size();
    return true;
  }

  bool ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Fail("expected '\"'");
    }
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Fail("truncated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("bad \\u escape");
            }
          }
          // UTF-8 encode (BMP only; the writer never emits surrogates).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xc0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
          } else {
            out->push_back(static_cast<char>(0xe0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
          }
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseValue(JsonValue* out) {
    if (depth_ >= kMaxDepth) return Fail("nesting too deep");
    SkipSpace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == 'n') {
      out->kind = JsonValue::Kind::kNull;
      return Literal("null");
    }
    if (c == 't') {
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = true;
      return Literal("true");
    }
    if (c == 'f') {
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = false;
      return Literal("false");
    }
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->string_value);
    }
    if (c == '[') {
      ++pos_;
      ++depth_;
      out->kind = JsonValue::Kind::kArray;
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        --depth_;
        return true;
      }
      while (true) {
        out->array.emplace_back();
        if (!ParseValue(&out->array.back())) return false;
        SkipSpace();
        if (pos_ >= text_.size()) return Fail("unterminated array");
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == ']') {
          ++pos_;
          --depth_;
          return true;
        }
        return Fail("expected ',' or ']'");
      }
    }
    if (c == '{') {
      ++pos_;
      ++depth_;
      out->kind = JsonValue::Kind::kObject;
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        --depth_;
        return true;
      }
      while (true) {
        SkipSpace();
        std::string key;
        if (!ParseString(&key)) return false;
        SkipSpace();
        if (pos_ >= text_.size() || text_[pos_] != ':') {
          return Fail("expected ':'");
        }
        ++pos_;
        out->object.emplace_back(std::move(key), JsonValue());
        if (!ParseValue(&out->object.back().second)) return false;
        SkipSpace();
        if (pos_ >= text_.size()) return Fail("unterminated object");
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == '}') {
          ++pos_;
          --depth_;
          return true;
        }
        return Fail("expected ',' or '}'");
      }
    }
    // Number.
    const size_t start = pos_;
    if (c == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("unexpected character");
    const std::string num(text_.substr(start, pos_ - start));
    char* end = nullptr;
    out->kind = JsonValue::Kind::kNumber;
    out->number = std::strtod(num.c_str(), &end);
    if (end != num.c_str() + num.size()) return Fail("malformed number");
    return true;
  }

  static constexpr int kMaxDepth = 64;
  std::string_view text_;
  std::string* error_;
  size_t pos_ = 0;
  int depth_ = 0;
};

void DumpTo(const JsonValue& v, JsonWriter* w) {
  switch (v.kind) {
    case JsonValue::Kind::kNull:
      w->Null();
      break;
    case JsonValue::Kind::kBool:
      w->Bool(v.bool_value);
      break;
    case JsonValue::Kind::kNumber: {
      // Integral values round-trip as integers, matching what the writer
      // originally emitted for counters and nanosecond totals.
      const int64_t i = static_cast<int64_t>(v.number);
      if (static_cast<double>(i) == v.number) {
        w->Int(i);
      } else {
        w->Double(v.number);
      }
      break;
    }
    case JsonValue::Kind::kString:
      w->String(v.string_value);
      break;
    case JsonValue::Kind::kArray:
      w->BeginArray();
      for (const JsonValue& e : v.array) DumpTo(e, w);
      w->EndArray();
      break;
    case JsonValue::Kind::kObject:
      w->BeginObject();
      for (const auto& [key, value] : v.object) {
        w->Key(key);
        DumpTo(value, w);
      }
      w->EndObject();
      break;
  }
}

}  // namespace

bool JsonValue::Parse(std::string_view text, JsonValue* out,
                      std::string* error) {
  *out = JsonValue();
  return Parser(text, error).Run(out);
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string JsonValue::Dump() const {
  JsonWriter w;
  DumpTo(*this, &w);
  return w.str();
}

}  // namespace pmg::trace
