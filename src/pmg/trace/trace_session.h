#ifndef PMG_TRACE_TRACE_SESSION_H_
#define PMG_TRACE_TRACE_SESSION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "pmg/common/types.h"
#include "pmg/memsim/machine.h"
#include "pmg/memsim/trace_sink.h"
#include "pmg/trace/json.h"

/// \file trace_session.h
/// pmg::trace — the observability layer of the simulated machine. A
/// TraceSession attaches to a memsim::Machine as its TraceSink, collects
/// the per-epoch attribution stream, and turns it into
///   - a TraceReport: aggregate per-bucket / per-thread / per-region
///     simulated time, obeying the conservation law (buckets sum exactly
///     to the user+kernel time of the traced interval);
///   - a Chrome trace-event JSON document (load in Perfetto or
///     chrome://tracing): one track per virtual thread, an epoch track
///     with the bucket breakdown, per-socket bandwidth counter tracks,
///     and instant events for migrations, quarantines, checkpoints and
///     crashes;
///   - a versioned machine-readable JSON report (`pmg_run --json=`).
///
/// Attaching a session does not change pricing: a traced run is
/// bit-identical to an untraced one, and to one that also has sancheck
/// or faultsim attached (the seams are independent). A session may be
/// re-attached across machines (the recovery drivers build a fresh
/// Machine per crash attempt); simulated timestamps continue
/// monotonically across attachments.

namespace pmg::trace {

/// Version stamp of every JSON document this layer emits.
inline constexpr uint32_t kTraceSchemaVersion = 1;

/// Extra events a composing layer contributes to the Chrome export.
/// pmg::servetrace implements this to lay per-request span tracks next to
/// the machine's epoch tracks in one Perfetto-loadable document. The
/// implementation appends zero or more complete trace-event objects
/// (`w` is positioned inside the traceEvents array) and must be
/// deterministic — the export is byte-compared across runs.
class ChromeEventSource {
 public:
  virtual ~ChromeEventSource() = default;
  virtual void AppendChromeEvents(JsonWriter* w) const = 0;
};

struct TraceOptions {
  /// Retain per-epoch records (needed by the Chrome export; the aggregate
  /// report works without them).
  bool keep_epochs = true;
  /// Cap on retained epoch records; beyond it epochs still aggregate into
  /// the report but are dropped from the Chrome export.
  uint64_t max_epochs = 1ull << 20;
};

/// Aggregate attribution of everything the session observed.
struct TraceReport {
  uint32_t schema_version = kTraceSchemaVersion;
  /// Simulated time per TraceBucket, summed over traced epochs.
  SimNs buckets[memsim::kTraceBucketCount] = {};
  /// Sum of `buckets`.
  SimNs attributed_ns = 0;
  /// Machine-side clocks accumulated while attached (from MachineStats
  /// deltas — an accounting path independent of the buckets).
  SimNs user_ns = 0;
  SimNs kernel_ns = 0;
  SimNs total_ns = 0;
  uint64_t epochs = 0;
  uint64_t bandwidth_bound_epochs = 0;
  uint64_t migrated_pages = 0;
  /// Raw (pre-pmm_kernel_factor) migration-daemon inputs summed over the
  /// traced epochs — the DaemonCost breakdown the machine would otherwise
  /// drop after each scan.
  SimNs daemon_scan_raw_ns = 0;
  SimNs daemon_shootdown_raw_ns = 0;
  uint64_t quarantines = 0;
  uint64_t checkpoint_writes = 0;
  uint64_t checkpoint_restores = 0;
  uint64_t crashes = 0;
  /// Epoch records dropped from the Chrome export by TraceOptions.
  uint64_t dropped_epochs = 0;

  struct ThreadRow {
    ThreadId thread = 0;
    SimNs user_ns = 0;
    SimNs kernel_ns = 0;
  };
  /// Per-virtual-thread clock sums over all epochs, ordered by thread id.
  std::vector<ThreadRow> threads;

  struct RegionRow {
    std::string name;
    uint64_t accesses = 0;
    SimNs user_ns = 0;
  };
  /// Access-path user time per region name (merged across regions that
  /// share a name), in first-touch order.
  std::vector<RegionRow> regions;

  SimNs UserBucketNs() const {
    SimNs sum = 0;
    for (size_t b = 0; b < memsim::kFirstKernelBucket; ++b) {
      sum += buckets[b];
    }
    return sum;
  }
  SimNs KernelBucketNs() const { return attributed_ns - UserBucketNs(); }

  /// The conservation law: every simulated nanosecond the machine billed
  /// while traced is in exactly one bucket.
  bool Conserves() const { return attributed_ns == user_ns + kernel_ns; }

  /// Appends this report as one JSON object to `w`.
  void AppendJson(JsonWriter* w) const;
  /// Standalone versioned JSON document.
  std::string ToJson() const;
};

/// Collects the attribution stream of one or more machine attachments.
/// Not copyable; must outlive any machine it is attached to — or rather,
/// must be detached before the machine dies.
class TraceSession : public memsim::TraceSink {
 public:
  explicit TraceSession(const TraceOptions& options = TraceOptions());

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// Registers this session as `machine`'s trace sink and snapshots its
  /// stats. Simulated timestamps of a later attachment continue after the
  /// previous one (the recovery drivers rebuild the machine per attempt).
  void Attach(memsim::Machine* machine);
  /// Folds the machine's stats delta into the report and unregisters.
  void Detach();
  bool attached() const { return machine_ != nullptr; }

  // TraceSink:
  void OnEpochTrace(const memsim::EpochTrace& epoch) override;
  void OnInstant(memsim::TraceInstantKind kind, ThreadId thread, SimNs at_ns,
                 uint64_t value) override;

  /// The aggregate report (rebuilt on each call; includes the live
  /// machine's stats delta while attached).
  const TraceReport& report();

  /// Chrome trace-event JSON of the retained epochs. `extra` (optional)
  /// contributes additional events inside the same traceEvents array.
  std::string ChromeTraceJson(const ChromeEventSource* extra = nullptr) const;

  /// File emitters; on failure return false and set `*error`.
  bool WriteChromeTrace(const std::string& path, std::string* error,
                        const ChromeEventSource* extra = nullptr) const;
  bool WriteReportJson(const std::string& path, std::string* error);

 private:
  struct Instant {
    memsim::TraceInstantKind kind = memsim::TraceInstantKind::kMigration;
    ThreadId thread = 0;
    SimNs at_ns = 0;
    uint64_t value = 0;
  };
  struct RegionAgg {
    std::string name;
    uint64_t accesses = 0;
    SimNs user_ns = 0;
  };
  struct ThreadRowAgg {
    SimNs user_ns = 0;
    SimNs kernel_ns = 0;
    bool seen = false;
  };

  TraceOptions options_;
  memsim::Machine* machine_ = nullptr;
  memsim::MachineStats stats_base_;
  /// Maps this attachment's machine clock into the session's continuous
  /// simulated timeline.
  SimNs clock_offset_ = 0;
  SimNs last_end_ns_ = 0;

  // Aggregation state.
  SimNs buckets_[memsim::kTraceBucketCount] = {};
  SimNs done_user_ns_ = 0;
  SimNs done_kernel_ns_ = 0;
  SimNs done_total_ns_ = 0;
  uint64_t epochs_seen_ = 0;
  uint64_t bandwidth_bound_epochs_ = 0;
  uint64_t migrated_pages_ = 0;
  SimNs daemon_scan_raw_ns_ = 0;
  SimNs daemon_shootdown_raw_ns_ = 0;
  uint64_t quarantines_ = 0;
  uint64_t checkpoint_writes_ = 0;
  uint64_t checkpoint_restores_ = 0;
  uint64_t crashes_ = 0;
  uint64_t dropped_epochs_ = 0;
  std::vector<ThreadRowAgg> thread_agg_;
  std::vector<RegionAgg> region_agg_;  // first-touch order

  /// Retained per-epoch records (timestamps already offset into the
  /// session timeline) and point events.
  std::vector<memsim::EpochTrace> epochs_;
  std::vector<Instant> instants_;

  TraceReport report_;
};

}  // namespace pmg::trace

#endif  // PMG_TRACE_TRACE_SESSION_H_
