#ifndef PMG_TRACE_JSON_H_
#define PMG_TRACE_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

/// \file json.h
/// A minimal, dependency-free JSON writer and parser for the trace layer's
/// machine-readable outputs (run reports, BENCH_*.json, Chrome traces).
/// The writer emits compact, deterministically formatted text — identical
/// inputs produce byte-identical documents, which is what the determinism
/// regression tests diff. The parser exists so tests (and tools) can
/// round-trip what the writer produced; it accepts standard JSON minus
/// exotica (no \u surrogate pairs beyond the BMP escape itself).

namespace pmg::trace {

/// Streaming JSON writer with explicit structure calls. Misuse (a value
/// where a key is required, unbalanced End calls) aborts via PMG_CHECK.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  /// Object key; must be followed by exactly one value (or Begin*).
  JsonWriter& Key(std::string_view key);
  JsonWriter& String(std::string_view value);
  JsonWriter& Int(int64_t value);
  JsonWriter& UInt(uint64_t value);
  /// Shortest round-trip formatting ("%.17g").
  JsonWriter& Double(double value);
  /// Fixed-point formatting ("%.*f") — what the Chrome exporter uses for
  /// microsecond timestamps so output is byte-stable.
  JsonWriter& Fixed(double value, int precision);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  /// The document so far. Valid once every Begin has been Ended.
  const std::string& str() const { return out_; }

 private:
  void OnValue();
  void Push(bool is_object);
  void Pop(bool is_object);

  std::string out_;
  /// One frame per open container: whether it already has an element,
  /// and whether it is an object (keys required).
  struct Frame {
    bool has_element = false;
    bool is_object = false;
  };
  std::vector<Frame> stack_;
  bool key_pending_ = false;
  bool done_ = false;
};

/// Writes `value` with the writer's string escaping (helper shared with
/// the Chrome exporter).
void AppendEscaped(std::string* out, std::string_view value);

/// Parsed JSON document node.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number = 0.0;
  std::string string_value;
  std::vector<JsonValue> array;
  /// Insertion-ordered key/value pairs.
  std::vector<std::pair<std::string, JsonValue>> object;

  /// Parses `text` into `*out`. On failure returns false and describes
  /// the problem in `*error` (when non-null).
  static bool Parse(std::string_view text, JsonValue* out,
                    std::string* error);

  /// Object member lookup; null when absent or this is not an object.
  const JsonValue* Find(std::string_view key) const;

  bool IsNumber() const { return kind == Kind::kNumber; }
  uint64_t AsUInt() const { return static_cast<uint64_t>(number); }
  int64_t AsInt() const { return static_cast<int64_t>(number); }

  /// Re-serializes this value with JsonWriter formatting (round-trip
  /// support for the golden tests).
  std::string Dump() const;
};

}  // namespace pmg::trace

#endif  // PMG_TRACE_JSON_H_
