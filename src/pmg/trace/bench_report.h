#ifndef PMG_TRACE_BENCH_REPORT_H_
#define PMG_TRACE_BENCH_REPORT_H_

#include <cstdio>
#include <string>
#include <utility>

#include "pmg/trace/json.h"
#include "pmg/trace/trace_session.h"

/// \file bench_report.h
/// Shared BENCH_*.json emitter. A figure/table binary adds one row per
/// measured cell and writes a schema-versioned document into the working
/// directory (CI archives them as artifacts, and `pmg_perf` diffs them
/// against the committed baselines), so the paper numbers are
/// machine-readable, not just table text.
///
///   pmg::trace::BenchJson out("fig5");
///   out.BeginRow();
///   out.writer().Key("graph").String("kron30");
///   ...
///   out.EndRow();
///   out.Write();  // -> BENCH_fig5.json
///
/// The perf gate's row-matching contract (see pmg/metrics/perf_diff.h):
/// a row's string/bool fields are its identity, numeric fields its
/// measurements, and fields ending in `_ns` gate regressions. Keep the
/// identity fields stable across commits or the gate reports the renamed
/// rows as vanished measurements.

namespace pmg::trace {

class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {
    w_.BeginObject();
    w_.Key("schema_version").UInt(kTraceSchemaVersion);
    w_.Key("bench").String(name_);
    w_.Key("rows").BeginArray();
  }

  void BeginRow() { w_.BeginObject(); }
  void EndRow() { w_.EndObject(); }
  /// The row under construction; add fields with Key(...).<value>().
  JsonWriter& writer() { return w_; }

  /// Closes the document and writes BENCH_<name>.json. Returns the path
  /// (empty on I/O failure).
  std::string Write() {
    w_.EndArray();
    w_.EndObject();
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) return "";
    const std::string& body = w_.str();
    const size_t n = std::fwrite(body.data(), 1, body.size(), f);
    const bool ok = n == body.size() && std::fputc('\n', f) != EOF &&
                    std::fclose(f) == 0;
    return ok ? path : "";
  }

 private:
  std::string name_;
  JsonWriter w_;
};

}  // namespace pmg::trace

#endif  // PMG_TRACE_BENCH_REPORT_H_
