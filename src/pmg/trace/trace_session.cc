#include "pmg/trace/trace_session.h"

#include <cstdio>

#include "pmg/common/check.h"

namespace pmg::trace {

using memsim::EpochTrace;
using memsim::kFirstKernelBucket;
using memsim::kTraceBucketCount;
using memsim::TraceBucket;
using memsim::TraceBucketName;
using memsim::TraceInstantKind;
using memsim::TraceInstantName;

namespace {

/// The synthetic Chrome tid carrying one event per epoch (the per-bucket
/// breakdown); real virtual threads use their own ids below it.
constexpr uint64_t kEpochTrackTid = 1000000;

double ToUs(SimNs ns) { return static_cast<double>(ns) / 1000.0; }

bool WriteFile(const std::string& path, const std::string& body,
               std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open '" + path + "' for writing";
    return false;
  }
  const size_t written = std::fwrite(body.data(), 1, body.size(), f);
  const int closed = std::fclose(f);
  if (written != body.size() || closed != 0) {
    if (error != nullptr) *error = "short write to '" + path + "'";
    return false;
  }
  return true;
}

}  // namespace

void TraceReport::AppendJson(JsonWriter* w) const {
  w->BeginObject();
  w->Key("schema_version").UInt(schema_version);
  w->Key("conserves").Bool(Conserves());
  w->Key("total_ns").UInt(total_ns);
  w->Key("user_ns").UInt(user_ns);
  w->Key("kernel_ns").UInt(kernel_ns);
  w->Key("attributed_ns").UInt(attributed_ns);
  w->Key("epochs").UInt(epochs);
  w->Key("bandwidth_bound_epochs").UInt(bandwidth_bound_epochs);
  w->Key("migrated_pages").UInt(migrated_pages);
  w->Key("daemon_scan_raw_ns").UInt(daemon_scan_raw_ns);
  w->Key("daemon_shootdown_raw_ns").UInt(daemon_shootdown_raw_ns);
  w->Key("quarantines").UInt(quarantines);
  w->Key("checkpoint_writes").UInt(checkpoint_writes);
  w->Key("checkpoint_restores").UInt(checkpoint_restores);
  w->Key("crashes").UInt(crashes);
  w->Key("dropped_epochs").UInt(dropped_epochs);
  w->Key("buckets").BeginObject();
  for (size_t b = 0; b < kTraceBucketCount; ++b) {
    w->Key(TraceBucketName(static_cast<TraceBucket>(b))).UInt(buckets[b]);
  }
  w->EndObject();
  w->Key("threads").BeginArray();
  for (const ThreadRow& t : threads) {
    w->BeginObject();
    w->Key("thread").UInt(t.thread);
    w->Key("user_ns").UInt(t.user_ns);
    w->Key("kernel_ns").UInt(t.kernel_ns);
    w->EndObject();
  }
  w->EndArray();
  w->Key("regions").BeginArray();
  for (const RegionRow& r : regions) {
    w->BeginObject();
    w->Key("name").String(r.name);
    w->Key("accesses").UInt(r.accesses);
    w->Key("user_ns").UInt(r.user_ns);
    w->EndObject();
  }
  w->EndArray();
  w->EndObject();
}

std::string TraceReport::ToJson() const {
  JsonWriter w;
  AppendJson(&w);
  return w.str();
}

TraceSession::TraceSession(const TraceOptions& options) : options_(options) {}

void TraceSession::Attach(memsim::Machine* machine) {
  PMG_CHECK_MSG(machine_ == nullptr,
                "TraceSession is already attached to a machine");
  PMG_CHECK(machine != nullptr);
  machine_ = machine;
  stats_base_ = machine->stats();
  clock_offset_ = static_cast<int64_t>(last_end_ns_) -
                  static_cast<int64_t>(machine->now());
  machine->SetTraceSink(this);
}

void TraceSession::Detach() {
  PMG_CHECK_MSG(machine_ != nullptr, "TraceSession is not attached");
  const memsim::MachineStats delta = machine_->stats() - stats_base_;
  done_user_ns_ += delta.user_ns;
  done_kernel_ns_ += delta.kernel_ns;
  done_total_ns_ += delta.total_ns;
  machine_->SetTraceSink(nullptr);
  machine_ = nullptr;
}

void TraceSession::OnEpochTrace(const EpochTrace& epoch) {
  const SimNs start = static_cast<SimNs>(
      static_cast<int64_t>(epoch.start_ns) + clock_offset_);
  last_end_ns_ = start + epoch.total_ns;

  for (size_t b = 0; b < kTraceBucketCount; ++b) {
    buckets_[b] += epoch.buckets[b];
  }
  ++epochs_seen_;
  if (epoch.bandwidth_bound) ++bandwidth_bound_epochs_;
  migrated_pages_ += epoch.migrations;
  daemon_scan_raw_ns_ += epoch.daemon_scan_raw_ns;
  daemon_shootdown_raw_ns_ += epoch.daemon_shootdown_raw_ns;

  for (const EpochTrace::ThreadSlice& slice : epoch.threads) {
    if (slice.thread >= thread_agg_.size()) {
      thread_agg_.resize(slice.thread + 1);
    }
    ThreadRowAgg& agg = thread_agg_[slice.thread];
    agg.user_ns += slice.user_ns;
    agg.kernel_ns += slice.kernel_ns;
    agg.seen = true;
  }

  for (const EpochTrace::RegionCharge& rc : epoch.regions) {
    std::string name;
    if (machine_ != nullptr && machine_->page_table().IsLive(rc.region)) {
      name = machine_->page_table().region(rc.region).name;
    } else {
      name = "region#" + std::to_string(rc.region);
    }
    RegionAgg* agg = nullptr;
    for (RegionAgg& a : region_agg_) {
      if (a.name == name) {
        agg = &a;
        break;
      }
    }
    if (agg == nullptr) {
      region_agg_.push_back(RegionAgg{name, 0, 0});
      agg = &region_agg_.back();
    }
    agg->accesses += rc.accesses;
    agg->user_ns += rc.user_ns;
  }

  if (options_.keep_epochs) {
    if (epochs_.size() < options_.max_epochs) {
      epochs_.push_back(epoch);
      epochs_.back().start_ns = start;
    } else {
      ++dropped_epochs_;
    }
  }
}

void TraceSession::OnInstant(TraceInstantKind kind, ThreadId thread,
                             SimNs at_ns, uint64_t value) {
  switch (kind) {
    case TraceInstantKind::kQuarantine:
      ++quarantines_;
      break;
    case TraceInstantKind::kMigration:
      break;  // pages counted via EpochTrace::migrations
    case TraceInstantKind::kCheckpointWrite:
      ++checkpoint_writes_;
      break;
    case TraceInstantKind::kCheckpointRestore:
      ++checkpoint_restores_;
      break;
    case TraceInstantKind::kCrash:
      ++crashes_;
      break;
    case TraceInstantKind::kServeDispatch:
    case TraceInstantKind::kServeComplete:
    case TraceInstantKind::kServeShed:
    case TraceInstantKind::kServeRecovery:
      // Per-request span markers from pmg::serve: recorded on the timeline
      // (the Chrome export names them) but not aggregated here — the serve
      // report owns the request-level counters.
      break;
  }
  Instant in;
  in.kind = kind;
  in.thread = thread;
  in.at_ns =
      static_cast<SimNs>(static_cast<int64_t>(at_ns) + clock_offset_);
  in.value = value;
  instants_.push_back(in);
}

const TraceReport& TraceSession::report() {
  report_ = TraceReport();
  SimNs attributed = 0;
  for (size_t b = 0; b < kTraceBucketCount; ++b) {
    report_.buckets[b] = buckets_[b];
    attributed += buckets_[b];
  }
  report_.attributed_ns = attributed;
  report_.user_ns = done_user_ns_;
  report_.kernel_ns = done_kernel_ns_;
  report_.total_ns = done_total_ns_;
  if (machine_ != nullptr) {
    const memsim::MachineStats delta = machine_->stats() - stats_base_;
    report_.user_ns += delta.user_ns;
    report_.kernel_ns += delta.kernel_ns;
    report_.total_ns += delta.total_ns;
  }
  report_.epochs = epochs_seen_;
  report_.bandwidth_bound_epochs = bandwidth_bound_epochs_;
  report_.migrated_pages = migrated_pages_;
  report_.daemon_scan_raw_ns = daemon_scan_raw_ns_;
  report_.daemon_shootdown_raw_ns = daemon_shootdown_raw_ns_;
  report_.quarantines = quarantines_;
  report_.checkpoint_writes = checkpoint_writes_;
  report_.checkpoint_restores = checkpoint_restores_;
  report_.crashes = crashes_;
  report_.dropped_epochs = dropped_epochs_;
  for (size_t t = 0; t < thread_agg_.size(); ++t) {
    const ThreadRowAgg& agg = thread_agg_[t];
    if (!agg.seen) continue;
    report_.threads.push_back(
        {static_cast<ThreadId>(t), agg.user_ns, agg.kernel_ns});
  }
  for (const RegionAgg& agg : region_agg_) {
    report_.regions.push_back({agg.name, agg.accesses, agg.user_ns});
  }
  return report_;
}

std::string TraceSession::ChromeTraceJson(const ChromeEventSource* extra)
    const {
  JsonWriter w;
  w.BeginObject();
  w.Key("displayTimeUnit").String("ms");
  w.Key("otherData").BeginObject();
  w.Key("tool").String("pmg_trace");
  w.Key("schema_version").UInt(kTraceSchemaVersion);
  w.EndObject();
  w.Key("traceEvents").BeginArray();

  auto metadata = [&](uint64_t tid, const std::string& name) {
    w.BeginObject();
    w.Key("name").String("thread_name");
    w.Key("ph").String("M");
    w.Key("pid").UInt(0);
    w.Key("tid").UInt(tid);
    w.Key("args").BeginObject();
    w.Key("name").String(name);
    w.EndObject();
    w.EndObject();
  };

  w.BeginObject();
  w.Key("name").String("process_name");
  w.Key("ph").String("M");
  w.Key("pid").UInt(0);
  w.Key("args").BeginObject();
  w.Key("name").String("pmg simulated machine");
  w.EndObject();
  w.EndObject();

  // One named track per virtual thread that ever ran, plus the epoch track.
  std::vector<uint8_t> thread_seen;
  for (const EpochTrace& e : epochs_) {
    for (const EpochTrace::ThreadSlice& s : e.threads) {
      if (s.thread >= thread_seen.size()) thread_seen.resize(s.thread + 1, 0);
      thread_seen[s.thread] = 1;
    }
  }
  metadata(kEpochTrackTid, "epochs");
  for (size_t t = 0; t < thread_seen.size(); ++t) {
    if (thread_seen[t]) metadata(t, "vthread " + std::to_string(t));
  }

  for (const EpochTrace& e : epochs_) {
    // The epoch event with the full bucket breakdown.
    w.BeginObject();
    w.Key("name").String("epoch " + std::to_string(e.epoch_index));
    w.Key("ph").String("X");
    w.Key("pid").UInt(0);
    w.Key("tid").UInt(kEpochTrackTid);
    w.Key("ts").Fixed(ToUs(e.start_ns), 3);
    w.Key("dur").Fixed(ToUs(e.total_ns), 3);
    w.Key("args").BeginObject();
    w.Key("critical_thread").UInt(e.critical_thread);
    w.Key("bandwidth_bound").Bool(e.bandwidth_bound);
    w.Key("daemon_ns").UInt(e.daemon_ns);
    if (e.migrations > 0) w.Key("migrations").UInt(e.migrations);
    for (size_t b = 0; b < kTraceBucketCount; ++b) {
      if (e.buckets[b] == 0) continue;
      w.Key(TraceBucketName(static_cast<TraceBucket>(b))).UInt(e.buckets[b]);
    }
    w.EndObject();
    w.EndObject();

    // One slice per active thread.
    for (const EpochTrace::ThreadSlice& s : e.threads) {
      w.BeginObject();
      w.Key("name").String("e" + std::to_string(e.epoch_index));
      w.Key("ph").String("X");
      w.Key("pid").UInt(0);
      w.Key("tid").UInt(s.thread);
      w.Key("ts").Fixed(ToUs(e.start_ns), 3);
      w.Key("dur").Fixed(ToUs(s.user_ns + s.kernel_ns), 3);
      w.Key("args").BeginObject();
      w.Key("user_ns").UInt(s.user_ns);
      w.Key("kernel_ns").UInt(s.kernel_ns);
      w.EndObject();
      w.EndObject();
    }

    // Per-socket bandwidth-utilisation counters (GB/s == bytes/ns).
    for (size_t sk = 0; sk < e.sockets.size(); ++sk) {
      const EpochTrace::SocketTraffic& tr = e.sockets[sk];
      w.BeginObject();
      w.Key("name").String("socket" + std::to_string(sk) + " GB/s");
      w.Key("ph").String("C");
      w.Key("pid").UInt(0);
      w.Key("ts").Fixed(ToUs(e.start_ns), 3);
      w.Key("args").BeginObject();
      const double dur = static_cast<double>(
          e.total_ns == 0 ? SimNs{1} : e.total_ns);
      w.Key("dram").Fixed(static_cast<double>(tr.dram_bytes) / dur, 3);
      w.Key("pmm").Fixed(static_cast<double>(tr.pmm_bytes) / dur, 3);
      w.EndObject();
      w.EndObject();
    }
  }

  for (const Instant& in : instants_) {
    w.BeginObject();
    w.Key("name").String(TraceInstantName(in.kind));
    w.Key("ph").String("i");
    w.Key("s").String("g");
    w.Key("pid").UInt(0);
    w.Key("tid").UInt(in.thread);
    w.Key("ts").Fixed(ToUs(in.at_ns), 3);
    w.Key("args").BeginObject();
    w.Key("value").UInt(in.value);
    w.EndObject();
    w.EndObject();
  }

  if (extra != nullptr) extra->AppendChromeEvents(&w);

  w.EndArray();
  w.EndObject();
  return w.str();
}

bool TraceSession::WriteChromeTrace(const std::string& path,
                                    std::string* error,
                                    const ChromeEventSource* extra) const {
  return WriteFile(path, ChromeTraceJson(extra), error);
}

bool TraceSession::WriteReportJson(const std::string& path,
                                   std::string* error) {
  return WriteFile(path, report().ToJson() + "\n", error);
}

}  // namespace pmg::trace
