#include "pmg/faultsim/recovery.h"

#include <cmath>
#include <vector>

#include "pmg/common/check.h"
#include "pmg/graph/csr_graph.h"
#include "pmg/metrics/metrics_session.h"
#include "pmg/runtime/numa_array.h"
#include "pmg/runtime/runtime.h"
#include "pmg/runtime/worklist.h"
#include "pmg/trace/trace_session.h"
#include "pmg/whatif/journal.h"

namespace pmg::faultsim {

namespace {

/// Attempt loop shared by the drivers: build a fresh machine per attempt
/// (DRAM does not survive a crash), keep the injector attached across
/// attempts (the fault schedule and its consumed one-shot events do), and
/// account every attempt's simulated time — including the partial work a
/// crash threw away, which is exactly the cost recovery must beat.
template <typename Attempt>
void RunAttempts(const RecoveryConfig& cfg, FaultInjector& injector,
                 RecoveryResult& out, Attempt&& attempt) {
  for (uint32_t i = 0; i <= cfg.max_restarts; ++i) {
    ++out.attempts;
    memsim::Machine machine(cfg.machine);
    // Plumbed for uniformity: the always-attached injector keeps recovery
    // attempts on direct pricing, but the pool costs nothing unattended.
    machine.SetHostPool(memsim::HostPool::Default());
    machine.SetFaultHook(&injector);
    // Re-attach the trace session to this attempt's fresh machine; its
    // timeline continues where the crashed attempt's ended. Same for the
    // metrics session.
    if (cfg.trace != nullptr) cfg.trace->Attach(&machine);
    // The journal recorder splices in front of the trace session's sink
    // and PMG_CHECKs that the fresh machine prices like the crashed one.
    if (cfg.journal != nullptr) cfg.journal->Attach(&machine);
    if (cfg.metrics != nullptr) cfg.metrics->Attach(&machine);
    bool done = false;
    bool crashed = false;
    try {
      done = attempt(machine, i);
      machine.CloseEpochIfOpen();
    } catch (const memsim::SimulatedCrash&) {
      ++out.crashes;
      crashed = true;
      // Close the interrupted epoch so time spent before the crash is
      // accounted. A second crash fired while closing is swallowed: this
      // machine is already dead.
      try {
        machine.CloseEpochIfOpen();
      } catch (const memsim::SimulatedCrash&) {
        ++out.crashes;
      }
    }
    if (crashed && machine.trace_sink() != nullptr) {
      machine.trace_sink()->OnInstant(memsim::TraceInstantKind::kCrash, 0,
                                      machine.now(), 1);
    }
    if (cfg.metrics != nullptr) cfg.metrics->Detach();
    if (cfg.journal != nullptr) cfg.journal->Detach();
    if (cfg.trace != nullptr) cfg.trace->Detach();
    out.total_ns += machine.now();
    if (done) {
      out.stats = machine.stats();
      out.completed = true;
      return;
    }
  }
}

}  // namespace

RecoveryResult RunBfsWithRecovery(const graph::CsrTopology& topo,
                                  VertexId source,
                                  const RecoveryConfig& cfg) {
  RecoveryResult out;
  FaultInjector injector(cfg.faults);
  CheckpointStore store;
  const uint64_t n = topo.num_vertices;
  PMG_CHECK(source < n);

  RunAttempts(cfg, injector, out,
              [&](memsim::Machine& machine, uint32_t attempt_index) {
    runtime::Runtime rt(&machine, cfg.threads);
    graph::GraphLayout layout;
    layout.policy = cfg.algo.label_policy;
    graph::CsrGraph g(&machine, topo, layout, "g");
    g.Prefault(cfg.threads);

    runtime::NumaArray<uint32_t> level(&machine, n, cfg.algo.label_policy,
                                       "bfs.level");
    runtime::DenseWorklist wl(&machine, n, cfg.algo.label_policy, "bfs.wl");
    uint32_t round = 0;
    bool resumed = false;
    if (attempt_index > 0) {
      std::vector<uint8_t> payload;
      const SimNs t0 = machine.now();
      const bool ok = store.Restore(machine, &payload);
      out.restore_ns += machine.now() - t0;
      if (machine.trace_sink() != nullptr) {
        machine.trace_sink()->OnInstant(
            memsim::TraceInstantKind::kCheckpointRestore, 0, machine.now(),
            payload.size());
      }
      if (ok) {
        PayloadReader r(payload);
        round = r.U32();
        const uint64_t active = r.U64();
        std::vector<uint32_t> lv(n);
        std::vector<uint8_t> flags(n);
        r.Bytes(lv.data(), n * sizeof(uint32_t));
        r.Bytes(flags.data(), n);
        PMG_CHECK_MSG(r.ok(), "bfs checkpoint payload truncated");
        rt.ParallelFor(0, n, [&](ThreadId t, uint64_t v) {
          level.Set(t, v, lv[v]);
        });
        wl.RestoreCur(rt, flags.data(), active);
        resumed = true;
        ++out.restarts_from_checkpoint;
      }
    }
    if (!resumed) {
      rt.ParallelFor(0, n, [&](ThreadId t, uint64_t v) {
        level.Set(t, v, analytics::kInfLevel);
      });
      level.Set(0, source, 0);
      wl.ActivateCur(0, source);
      if (attempt_index > 0) ++out.restarts_from_scratch;
    }

    while (!wl.Empty()) {
      const uint32_t next_level = round + 1;
      wl.ForEachActive(rt, [&](ThreadId t, uint64_t v) {
        g.ForEachOutEdge(t, v, [&](ThreadId tt, VertexId u, uint32_t) {
          if (level.CasMin(tt, u, next_level)) wl.Activate(tt, u);
        });
      });
      wl.Advance(rt);
      ++round;
      if (cfg.checkpoint_every > 0 && !wl.Empty() &&
          round % cfg.checkpoint_every == 0) {
        PayloadWriter w;
        w.U32(round);
        w.U64(wl.ActiveCount());
        w.Bytes(level.raw(), n * sizeof(uint32_t));
        w.Bytes(wl.cur_flags().raw(), n);
        OpRange range;
        range.begin_op = injector.media_ops();
        const SimNs t0 = machine.now();
        store.Write(machine, cfg.threads, w.data().data(), w.data().size());
        out.checkpoint_write_ns += machine.now() - t0;
        if (machine.trace_sink() != nullptr) {
          machine.trace_sink()->OnInstant(
              memsim::TraceInstantKind::kCheckpointWrite, 0, machine.now(),
              w.data().size());
        }
        range.end_op = injector.media_ops();
        out.ckpt_op_ranges.push_back(range);
      }
    }
    out.rounds = round;
    out.bfs_levels.assign(level.raw(), level.raw() + n);
    return true;
  });
  out.fault = injector.report();
  out.ckpt = store.stats();
  return out;
}

RecoveryResult RunPrWithRecovery(const graph::CsrTopology& topo,
                                 const RecoveryConfig& cfg) {
  RecoveryResult out;
  FaultInjector injector(cfg.faults);
  CheckpointStore store;
  const uint64_t n = topo.num_vertices;

  RunAttempts(cfg, injector, out,
              [&](memsim::Machine& machine, uint32_t attempt_index) {
    runtime::Runtime rt(&machine, cfg.threads);
    graph::GraphLayout layout;
    layout.policy = cfg.algo.label_policy;
    layout.load_in_edges = true;
    graph::CsrGraph g(&machine, topo, layout, "g");
    g.Prefault(cfg.threads);

    const double base = 1.0 - cfg.algo.pr_damping;
    runtime::NumaArray<double> rank(&machine, n, cfg.algo.label_policy,
                                    "pr.rank");
    runtime::NumaArray<double> contrib(&machine, n, cfg.algo.label_policy,
                                       "pr.contrib");
    uint64_t round = 0;
    double mean_delta = cfg.algo.pr_tolerance + 1;
    bool resumed = false;
    if (attempt_index > 0) {
      std::vector<uint8_t> payload;
      const SimNs t0 = machine.now();
      const bool ok = store.Restore(machine, &payload);
      out.restore_ns += machine.now() - t0;
      if (machine.trace_sink() != nullptr) {
        machine.trace_sink()->OnInstant(
            memsim::TraceInstantKind::kCheckpointRestore, 0, machine.now(),
            payload.size());
      }
      if (ok) {
        PayloadReader r(payload);
        round = r.U64();
        mean_delta = r.F64();
        std::vector<double> rk(n);
        r.Bytes(rk.data(), n * sizeof(double));
        PMG_CHECK_MSG(r.ok(), "pagerank checkpoint payload truncated");
        rt.ParallelFor(0, n, [&](ThreadId t, uint64_t v) {
          rank.Set(t, v, rk[v]);
        });
        resumed = true;
        ++out.restarts_from_checkpoint;
      }
    }
    if (!resumed) {
      rt.ParallelFor(0, n, [&](ThreadId t, uint64_t v) {
        rank.Set(t, v, base);
      });
      if (attempt_index > 0) ++out.restarts_from_scratch;
    }

    // The PrPull loop: contrib is recomputed from rank each round, so
    // (round, mean_delta, rank[]) is the complete round state.
    while (round < cfg.algo.pr_max_rounds &&
           mean_delta > cfg.algo.pr_tolerance) {
      rt.ParallelFor(0, n, [&](ThreadId t, uint64_t v) {
        const auto [first, last] = g.OutRange(t, v);
        const uint64_t deg = last - first;
        contrib.Set(
            t, v,
            deg == 0 ? 0.0 : rank.Get(t, v) / static_cast<double>(deg));
      });
      double total_delta = 0;
      rt.ParallelFor(0, n, [&](ThreadId t, uint64_t v) {
        double sum = 0;
        const auto [first, last] = g.InRange(t, v);
        for (EdgeId e = first; e < last; ++e) {
          sum += contrib.Get(t, g.InSrc(t, e));
        }
        const double next = base + cfg.algo.pr_damping * sum;
        // pmg-lint: allow(pmg-atomic-shared-write) fp sum in vertex order
        // must match the pre-crash run bit for bit across checkpoints
        total_delta += std::fabs(next - rank.Get(t, v));
        rank.Set(t, v, next);
      });
      mean_delta = total_delta / static_cast<double>(n);
      ++round;
      const bool will_continue = round < cfg.algo.pr_max_rounds &&
                                 mean_delta > cfg.algo.pr_tolerance;
      if (cfg.checkpoint_every > 0 && will_continue &&
          round % cfg.checkpoint_every == 0) {
        PayloadWriter w;
        w.U64(round);
        w.F64(mean_delta);
        w.Bytes(rank.raw(), n * sizeof(double));
        OpRange range;
        range.begin_op = injector.media_ops();
        const SimNs t0 = machine.now();
        store.Write(machine, cfg.threads, w.data().data(), w.data().size());
        out.checkpoint_write_ns += machine.now() - t0;
        if (machine.trace_sink() != nullptr) {
          machine.trace_sink()->OnInstant(
              memsim::TraceInstantKind::kCheckpointWrite, 0, machine.now(),
              w.data().size());
        }
        range.end_op = injector.media_ops();
        out.ckpt_op_ranges.push_back(range);
      }
    }
    out.rounds = round;
    out.pr_ranks.assign(rank.raw(), rank.raw() + n);
    return true;
  });
  out.fault = injector.report();
  out.ckpt = store.stats();
  return out;
}

RecoveryResult RunCcWithRecovery(const graph::CsrTopology& topo,
                                 const RecoveryConfig& cfg) {
  RecoveryResult out;
  FaultInjector injector(cfg.faults);
  CheckpointStore store;
  const uint64_t n = topo.num_vertices;

  RunAttempts(cfg, injector, out,
              [&](memsim::Machine& machine, uint32_t attempt_index) {
    runtime::Runtime rt(&machine, cfg.threads);
    graph::GraphLayout layout;
    layout.policy = cfg.algo.label_policy;
    graph::CsrGraph g(&machine, topo, layout, "g");
    g.Prefault(cfg.threads);

    runtime::NumaArray<uint64_t> label(&machine, n, cfg.algo.label_policy,
                                       "cc.label");
    runtime::NumaArray<uint64_t> next(&machine, n, cfg.algo.label_policy,
                                      "cc.next");
    runtime::DenseWorklist wl(&machine, n, cfg.algo.label_policy, "cc.wl");
    uint64_t round = 0;
    bool resumed = false;
    if (attempt_index > 0) {
      std::vector<uint8_t> payload;
      const SimNs t0 = machine.now();
      const bool ok = store.Restore(machine, &payload);
      out.restore_ns += machine.now() - t0;
      if (machine.trace_sink() != nullptr) {
        machine.trace_sink()->OnInstant(
            memsim::TraceInstantKind::kCheckpointRestore, 0, machine.now(),
            payload.size());
      }
      if (ok) {
        PayloadReader r(payload);
        round = r.U64();
        const uint64_t active = r.U64();
        std::vector<uint64_t> lb(n);
        std::vector<uint8_t> flags(n);
        r.Bytes(lb.data(), n * sizeof(uint64_t));
        r.Bytes(flags.data(), n);
        PMG_CHECK_MSG(r.ok(), "cc checkpoint payload truncated");
        rt.ParallelFor(0, n, [&](ThreadId t, uint64_t v) {
          label.Set(t, v, lb[v]);
        });
        wl.RestoreCur(rt, flags.data(), active);
        resumed = true;
        ++out.restarts_from_checkpoint;
      }
    }
    if (!resumed) {
      rt.ParallelFor(0, n, [&](ThreadId t, uint64_t v) {
        label.Set(t, v, v);
        wl.ActivateCur(t, v);
      });
      if (attempt_index > 0) ++out.restarts_from_scratch;
    }

    // The CcLabelProp loop: `next` is rebuilt from `label` at the top of
    // every round, so it never needs checkpointing.
    while (!wl.Empty()) {
      rt.ParallelFor(0, n, [&](ThreadId t, uint64_t v) {
        next.Set(t, v, label.Get(t, v));
      });
      wl.ForEachActive(rt, [&](ThreadId t, uint64_t v) {
        const uint64_t lv = label.Get(t, v);
        g.ForEachOutEdge(t, v, [&](ThreadId tt, VertexId u, uint32_t) {
          if (next.CasMin(tt, u, lv)) wl.Activate(tt, u);
        });
      });
      std::swap(label, next);
      wl.Advance(rt);
      ++round;
      if (cfg.checkpoint_every > 0 && !wl.Empty() &&
          round % cfg.checkpoint_every == 0) {
        PayloadWriter w;
        w.U64(round);
        w.U64(wl.ActiveCount());
        w.Bytes(label.raw(), n * sizeof(uint64_t));
        w.Bytes(wl.cur_flags().raw(), n);
        OpRange range;
        range.begin_op = injector.media_ops();
        const SimNs t0 = machine.now();
        store.Write(machine, cfg.threads, w.data().data(), w.data().size());
        out.checkpoint_write_ns += machine.now() - t0;
        if (machine.trace_sink() != nullptr) {
          machine.trace_sink()->OnInstant(
              memsim::TraceInstantKind::kCheckpointWrite, 0, machine.now(),
              w.data().size());
        }
        range.end_op = injector.media_ops();
        out.ckpt_op_ranges.push_back(range);
      }
    }
    out.rounds = round;
    out.cc_labels.assign(label.raw(), label.raw() + n);
    return true;
  });
  out.fault = injector.report();
  out.ckpt = store.stats();
  return out;
}

RecoveryResult RunSsspWithRecovery(const graph::CsrTopology& topo,
                                   VertexId source,
                                   const RecoveryConfig& cfg) {
  RecoveryResult out;
  FaultInjector injector(cfg.faults);
  CheckpointStore store;
  const uint64_t n = topo.num_vertices;
  PMG_CHECK(source < n);

  RunAttempts(cfg, injector, out,
              [&](memsim::Machine& machine, uint32_t attempt_index) {
    runtime::Runtime rt(&machine, cfg.threads);
    graph::GraphLayout layout;
    layout.policy = cfg.algo.label_policy;
    layout.with_weights = true;
    graph::CsrGraph g(&machine, topo, layout, "g");
    g.Prefault(cfg.threads);

    runtime::NumaArray<uint64_t> dist(&machine, n, cfg.algo.label_policy,
                                      "sssp.dist");
    runtime::DenseWorklist wl(&machine, n, cfg.algo.label_policy, "sssp.wl");
    uint64_t round = 0;
    bool resumed = false;
    if (attempt_index > 0) {
      std::vector<uint8_t> payload;
      const SimNs t0 = machine.now();
      const bool ok = store.Restore(machine, &payload);
      out.restore_ns += machine.now() - t0;
      if (machine.trace_sink() != nullptr) {
        machine.trace_sink()->OnInstant(
            memsim::TraceInstantKind::kCheckpointRestore, 0, machine.now(),
            payload.size());
      }
      if (ok) {
        PayloadReader r(payload);
        round = r.U64();
        const uint64_t active = r.U64();
        std::vector<uint64_t> ds(n);
        std::vector<uint8_t> flags(n);
        r.Bytes(ds.data(), n * sizeof(uint64_t));
        r.Bytes(flags.data(), n);
        PMG_CHECK_MSG(r.ok(), "sssp checkpoint payload truncated");
        rt.ParallelFor(0, n, [&](ThreadId t, uint64_t v) {
          dist.Set(t, v, ds[v]);
        });
        wl.RestoreCur(rt, flags.data(), active);
        resumed = true;
        ++out.restarts_from_checkpoint;
      }
    }
    if (!resumed) {
      rt.ParallelFor(0, n, [&](ThreadId t, uint64_t v) {
        dist.Set(t, v, analytics::kInfDist);
      });
      dist.Set(0, source, 0);
      wl.ActivateCur(0, source);
      if (attempt_index > 0) ++out.restarts_from_scratch;
    }

    // The SsspDenseWl loop.
    while (!wl.Empty()) {
      wl.ForEachActive(rt, [&](ThreadId t, uint64_t v) {
        const uint64_t dv = dist.GetAtomic(t, v);
        g.ForEachOutEdge(t, v, [&](ThreadId tt, VertexId u, uint32_t w) {
          if (dist.CasMin(tt, u, dv + w)) wl.Activate(tt, u);
        });
      });
      wl.Advance(rt);
      ++round;
      if (cfg.checkpoint_every > 0 && !wl.Empty() &&
          round % cfg.checkpoint_every == 0) {
        PayloadWriter w;
        w.U64(round);
        w.U64(wl.ActiveCount());
        w.Bytes(dist.raw(), n * sizeof(uint64_t));
        w.Bytes(wl.cur_flags().raw(), n);
        OpRange range;
        range.begin_op = injector.media_ops();
        const SimNs t0 = machine.now();
        store.Write(machine, cfg.threads, w.data().data(), w.data().size());
        out.checkpoint_write_ns += machine.now() - t0;
        if (machine.trace_sink() != nullptr) {
          machine.trace_sink()->OnInstant(
              memsim::TraceInstantKind::kCheckpointWrite, 0, machine.now(),
              w.data().size());
        }
        range.end_op = injector.media_ops();
        out.ckpt_op_ranges.push_back(range);
      }
    }
    out.rounds = round;
    out.sssp_dists.assign(dist.raw(), dist.raw() + n);
    return true;
  });
  out.fault = injector.report();
  out.ckpt = store.stats();
  return out;
}

}  // namespace pmg::faultsim
