#include "pmg/faultsim/fault_injector.h"

#include "pmg/memsim/cpu_cache.h"

namespace pmg::faultsim {

namespace {

/// splitmix64: the standard 64-bit finalizer — deterministic, stateless,
/// good avalanche for seeded per-ordinal draws.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

FaultInjector::FaultInjector(const FaultSchedule& schedule)
    : seed_(schedule.seed) {
  armed_.reserve(schedule.events.size());
  for (const FaultEvent& ev : schedule.events) armed_.push_back({ev, false});
}

uint32_t FaultInjector::RetriesFor(uint64_t ordinal,
                                   const FaultEvent& ev) const {
  return 1 + static_cast<uint32_t>(SplitMix64(seed_ ^ ordinal) %
                                   ev.max_retries);
}

SimNs FaultInjector::LatencyStall(uint64_t ordinal, uint32_t* retries) {
  SimNs stall = 0;
  for (Armed& a : armed_) {
    if (a.ev.kind != FaultKind::kLatency) continue;
    if (ordinal < a.ev.at || ordinal >= a.ev.at + a.ev.count) continue;
    const uint32_t r = RetriesFor(ordinal, a.ev);
    // Exponential backoff: retry k waits base * 2^(k-1), summing to
    // base * (2^r - 1).
    stall += a.ev.stall_ns * ((uint64_t{1} << r) - 1);
    *retries += r;
    ++report_.transient_faults;
  }
  report_.retries += *retries;
  report_.stall_ns += stall;
  return stall;
}

void FaultInjector::MaybeCrashAtOp(uint64_t ordinal) {
  for (Armed& a : armed_) {
    if (a.ev.kind != FaultKind::kCrash || a.fired) continue;
    if (a.ev.trigger != TriggerKind::kAccess || ordinal < a.ev.at) continue;
    // Consume before throwing: the event must not re-fire after restart.
    a.fired = true;
    ++report_.crashes;
    throw memsim::SimulatedCrash{ordinal, 0};
  }
}

memsim::FaultAction FaultInjector::OnMediaAccess(ThreadId /*t*/,
                                                 VirtAddr addr,
                                                 bool /*pmm_media*/) {
  const uint64_t ord = report_.media_ops++;
  memsim::FaultAction action;
  for (Armed& a : armed_) {
    if (a.ev.kind != FaultKind::kUe || a.fired) continue;
    const bool hit =
        a.ev.trigger == TriggerKind::kAccess
            ? ord >= a.ev.at
            : addr / memsim::kCacheLineBytes ==
                  a.ev.at / memsim::kCacheLineBytes;
    if (hit) {
      a.fired = true;
      action.uncorrectable = true;
      ++report_.ue_delivered;
    }
  }
  action.stall_ns = LatencyStall(ord, &action.retries);
  MaybeCrashAtOp(ord);
  return action;
}

SimNs FaultInjector::OnStorageOp(ThreadId /*t*/, uint64_t /*bytes*/,
                                 bool /*write*/) {
  const uint64_t ord = report_.media_ops++;
  uint32_t retries = 0;
  const SimNs stall = LatencyStall(ord, &retries);
  MaybeCrashAtOp(ord);
  return stall;
}

void FaultInjector::OnQuarantined(VirtAddr page_base, uint64_t page_bytes,
                                  std::string_view region) {
  report_.losses.push_back({std::string(region), page_base, page_bytes});
}

double FaultInjector::RemoteBandwidthFactor(uint64_t epoch) {
  double factor = 1.0;
  for (const Armed& a : armed_) {
    if (a.ev.kind != FaultKind::kLink) continue;
    if (epoch >= a.ev.at && epoch < a.ev.at + a.ev.epochs) {
      factor = factor < a.ev.factor ? factor : a.ev.factor;
    }
  }
  if (factor < 1.0) ++report_.degraded_epochs;
  return factor;
}

void FaultInjector::OnEpochEnd(uint64_t epoch) {
  for (Armed& a : armed_) {
    if (a.ev.kind != FaultKind::kCrash || a.fired) continue;
    if (a.ev.trigger != TriggerKind::kEpoch || epoch < a.ev.at) continue;
    a.fired = true;
    ++report_.crashes;
    throw memsim::SimulatedCrash{0, epoch};
  }
}

}  // namespace pmg::faultsim
