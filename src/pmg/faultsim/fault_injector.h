#ifndef PMG_FAULTSIM_FAULT_INJECTOR_H_
#define PMG_FAULTSIM_FAULT_INJECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "pmg/common/types.h"
#include "pmg/faultsim/fault_schedule.h"
#include "pmg/memsim/fault_hook.h"

/// \file fault_injector.h
/// The FaultHook implementation that replays a FaultSchedule. The injector
/// keeps one shared media-op ordinal across costed accesses and storage
/// I/Os, so `access:N` triggers land on a deterministic event stream.
/// One-shot events (UEs, crashes) are consumed *before* they fire, which
/// is what lets a recovery driver keep the same injector attached across
/// restarts without the crash re-firing.

namespace pmg::faultsim {

/// What the injector delivered over its lifetime (which may span several
/// machine instances when a recovery driver restarts after crashes).
struct FaultReport {
  uint64_t media_ops = 0;
  uint64_t ue_delivered = 0;
  uint64_t transient_faults = 0;
  uint64_t retries = 0;
  SimNs stall_ns = 0;
  uint64_t degraded_epochs = 0;
  uint64_t crashes = 0;
  /// Data the machine reported lost to quarantine, oldest first.
  struct Loss {
    std::string region;
    VirtAddr page_base = 0;
    uint64_t bytes = 0;
  };
  std::vector<Loss> losses;
};

class FaultInjector final : public memsim::FaultHook {
 public:
  explicit FaultInjector(const FaultSchedule& schedule);

  memsim::FaultAction OnMediaAccess(ThreadId t, VirtAddr addr,
                                    bool pmm_media) override;
  SimNs OnStorageOp(ThreadId t, uint64_t bytes, bool write) override;
  void OnQuarantined(VirtAddr page_base, uint64_t page_bytes,
                     std::string_view region) override;
  double RemoteBandwidthFactor(uint64_t epoch) override;
  void OnEpochEnd(uint64_t epoch) override;

  uint64_t media_ops() const { return report_.media_ops; }
  const FaultReport& report() const { return report_; }

 private:
  struct Armed {
    FaultEvent ev;
    bool fired = false;
  };

  /// Seeded deterministic retry count in [1, max_retries] for media op
  /// `ordinal`, and the exponential-backoff stall it implies.
  uint32_t RetriesFor(uint64_t ordinal, const FaultEvent& ev) const;
  /// Applies latency events to op `ordinal`; returns the total stall and
  /// adds the retry count to `*retries`.
  SimNs LatencyStall(uint64_t ordinal, uint32_t* retries);
  /// Fires any armed access-triggered crash at op `ordinal` (throws).
  void MaybeCrashAtOp(uint64_t ordinal);

  std::vector<Armed> armed_;
  uint64_t seed_ = 1;
  FaultReport report_;
};

}  // namespace pmg::faultsim

#endif  // PMG_FAULTSIM_FAULT_INJECTOR_H_
