#include "pmg/faultsim/fault_schedule.h"

#include <charconv>
#include <cstdio>

namespace pmg::faultsim {

namespace {

bool ParseU64(std::string_view s, uint64_t* out) {
  if (s.empty()) return false;
  int base = 10;
  if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    s.remove_prefix(2);
    base = 16;
  }
  const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), *out,
                                       base);
  return ec == std::errc{} && p == s.data() + s.size();
}

bool ParseF64(std::string_view s, double* out) {
  if (s.empty()) return false;
  const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc{} && p == s.data() + s.size();
}

bool Fail(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
  return false;
}

bool ParseEvent(std::string_view token, FaultEvent* ev, std::string* error) {
  const std::string tok(token);  // for error messages
  // Head: kind@trigger:value, then ,key=val pairs.
  const size_t comma = token.find(',');
  std::string_view head = token.substr(0, comma);
  const size_t at_pos = head.find('@');
  if (at_pos == std::string_view::npos) {
    return Fail(error, "fault event '" + tok + "' is missing '@trigger'");
  }
  const std::string_view kind = head.substr(0, at_pos);
  std::string_view trig = head.substr(at_pos + 1);
  const size_t colon = trig.find(':');
  if (colon == std::string_view::npos) {
    return Fail(error, "fault trigger in '" + tok + "' is missing ':value'");
  }
  const std::string_view trig_kind = trig.substr(0, colon);
  const std::string_view trig_value = trig.substr(colon + 1);

  if (kind == "ue") {
    ev->kind = FaultKind::kUe;
  } else if (kind == "lat") {
    ev->kind = FaultKind::kLatency;
  } else if (kind == "link") {
    ev->kind = FaultKind::kLink;
  } else if (kind == "crash") {
    ev->kind = FaultKind::kCrash;
  } else {
    return Fail(error, "unknown fault kind '" + std::string(kind) + "'");
  }

  if (trig_kind == "access") {
    ev->trigger = TriggerKind::kAccess;
  } else if (trig_kind == "addr") {
    ev->trigger = TriggerKind::kAddr;
  } else if (trig_kind == "epoch") {
    ev->trigger = TriggerKind::kEpoch;
  } else {
    return Fail(error,
                "unknown fault trigger '" + std::string(trig_kind) + "'");
  }
  if (!ParseU64(trig_value, &ev->at)) {
    return Fail(error,
                "bad trigger value '" + std::string(trig_value) + "'");
  }

  // Kind/trigger compatibility.
  const bool ok =
      (ev->kind == FaultKind::kUe && (ev->trigger == TriggerKind::kAccess ||
                                      ev->trigger == TriggerKind::kAddr)) ||
      (ev->kind == FaultKind::kLatency &&
       ev->trigger == TriggerKind::kAccess) ||
      (ev->kind == FaultKind::kLink && ev->trigger == TriggerKind::kEpoch) ||
      (ev->kind == FaultKind::kCrash && (ev->trigger == TriggerKind::kAccess ||
                                         ev->trigger == TriggerKind::kEpoch));
  if (!ok) {
    return Fail(error, "fault kind '" + std::string(kind) +
                           "' cannot use trigger '" + std::string(trig_kind) +
                           "'");
  }

  std::string_view rest =
      comma == std::string_view::npos ? std::string_view{}
                                      : token.substr(comma + 1);
  while (!rest.empty()) {
    const size_t next = rest.find(',');
    const std::string_view kv = rest.substr(0, next);
    rest = next == std::string_view::npos ? std::string_view{}
                                          : rest.substr(next + 1);
    const size_t eq = kv.find('=');
    if (eq == std::string_view::npos) {
      return Fail(error, "fault option '" + std::string(kv) +
                             "' is not key=value");
    }
    const std::string_view key = kv.substr(0, eq);
    const std::string_view val = kv.substr(eq + 1);
    uint64_t u = 0;
    if (key == "ns" && ev->kind == FaultKind::kLatency) {
      if (!ParseU64(val, &u) || u == 0) {
        return Fail(error, "bad ns value '" + std::string(val) + "'");
      }
      ev->stall_ns = u;
    } else if (key == "count" && ev->kind == FaultKind::kLatency) {
      if (!ParseU64(val, &u) || u == 0 || u > 0xffffffffull) {
        return Fail(error, "bad count value '" + std::string(val) + "'");
      }
      ev->count = static_cast<uint32_t>(u);
    } else if (key == "retries" && ev->kind == FaultKind::kLatency) {
      if (!ParseU64(val, &u) || u == 0 || u > 16) {
        return Fail(error, "retries must be in [1, 16]");
      }
      ev->max_retries = static_cast<uint32_t>(u);
    } else if (key == "x" && ev->kind == FaultKind::kLink) {
      double f = 0;
      if (!ParseF64(val, &f) || !(f > 0.0 && f <= 1.0)) {
        return Fail(error, "link factor x must be in (0, 1]");
      }
      ev->factor = f;
    } else if (key == "epochs" && ev->kind == FaultKind::kLink) {
      if (!ParseU64(val, &u) || u == 0 || u > 0xffffffffull) {
        return Fail(error, "bad epochs value '" + std::string(val) + "'");
      }
      ev->epochs = static_cast<uint32_t>(u);
    } else {
      return Fail(error, "option '" + std::string(key) +
                             "' does not apply to fault kind '" +
                             std::string(kind) + "'");
    }
  }
  return true;
}

}  // namespace

const char* FaultKindName(FaultKind k) {
  switch (k) {
    case FaultKind::kUe:
      return "ue";
    case FaultKind::kLatency:
      return "lat";
    case FaultKind::kLink:
      return "link";
    case FaultKind::kCrash:
      return "crash";
  }
  return "?";
}

bool FaultSchedule::HasCrash() const {
  for (const FaultEvent& ev : events) {
    if (ev.kind == FaultKind::kCrash) return true;
  }
  return false;
}

bool FaultSchedule::Parse(std::string_view spec, FaultSchedule* out,
                          std::string* error) {
  out->events.clear();
  while (!spec.empty()) {
    const size_t semi = spec.find(';');
    const std::string_view token = spec.substr(0, semi);
    spec = semi == std::string_view::npos ? std::string_view{}
                                          : spec.substr(semi + 1);
    if (token.empty()) continue;
    if (token.rfind("seed=", 0) == 0) {
      if (!ParseU64(token.substr(5), &out->seed)) {
        return Fail(error, "bad seed value '" + std::string(token) + "'");
      }
      continue;
    }
    FaultEvent ev;
    if (!ParseEvent(token, &ev, error)) return false;
    out->events.push_back(ev);
  }
  return true;
}

}  // namespace pmg::faultsim
