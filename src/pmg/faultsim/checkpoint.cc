#include "pmg/faultsim/checkpoint.h"

#include <algorithm>
#include <array>

#include "pmg/common/check.h"

namespace pmg::faultsim {

uint32_t Crc32(const void* data, uint64_t n, uint32_t crc) {
  static const std::array<uint32_t, 256> kTable = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) != 0 ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  const auto* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  for (uint64_t i = 0; i < n; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
  }
  return ~crc;
}

uint32_t CheckpointStore::MetaCrc(const Slot& s) {
  uint32_t crc = Crc32(&s.seq, sizeof(s.seq));
  crc = Crc32(&s.payload_bytes, sizeof(s.payload_bytes), crc);
  if (!s.chunk_crcs.empty()) {
    crc = Crc32(s.chunk_crcs.data(),
                s.chunk_crcs.size() * sizeof(uint32_t), crc);
  }
  return crc;
}

void CheckpointStore::Write(memsim::Machine& machine, uint32_t threads,
                            const void* payload, uint64_t bytes) {
  PMG_CHECK_MSG(!machine.in_epoch(),
                "checkpoint writes run in their own epoch");
  PMG_CHECK(threads >= 1 && bytes > 0);
  // A/B scheme: overwrite the torn or older slot, never the newest
  // committed one.
  auto worth = [](const Slot& s) { return s.committed ? s.seq : uint64_t{0}; };
  Slot& slot = slots_[worth(slots_[0]) <= worth(slots_[1]) ? 0 : 1];
  ++stats_.writes_started;
  // From here until the commit record lands, the slot is torn.
  slot.committed = false;
  slot.seq = next_seq_++;
  slot.payload_bytes = bytes;
  slot.data.clear();
  slot.chunk_crcs.clear();
  slot.meta_crc = 0;

  const auto* src = static_cast<const uint8_t*>(payload);
  machine.BeginEpoch(threads);
  uint64_t off = 0;
  uint32_t chunk_index = 0;
  while (off < bytes) {
    const uint64_t len = std::min<uint64_t>(opt_.chunk_bytes, bytes - off);
    // Host state first, priced I/O second: a SimulatedCrash thrown from
    // the storage path leaves this chunk present but uncommitted — torn.
    slot.data.insert(slot.data.end(), src + off, src + off + len);
    slot.chunk_crcs.push_back(Crc32(src + off, len));
    machine.StorageWrite(chunk_index % threads, len, opt_.node,
                         /*sequential=*/true);
    stats_.bytes_written += len;
    off += len;
    ++chunk_index;
  }
  slot.meta_crc = MetaCrc(slot);
  // Commit record: one cache-line publication store.
  machine.StorageWrite(0, 64, opt_.node, /*sequential=*/true);
  stats_.bytes_written += 64;
  slot.committed = true;
  ++stats_.writes_committed;
  machine.EndEpoch();
}

bool CheckpointStore::Validate(const Slot& s) {
  if (!s.committed) {
    ++stats_.torn_detected;
    return false;
  }
  if (s.meta_crc != MetaCrc(s) || s.data.size() != s.payload_bytes) {
    ++stats_.crc_failures;
    return false;
  }
  uint64_t off = 0;
  for (const uint32_t expect : s.chunk_crcs) {
    const uint64_t len =
        std::min<uint64_t>(opt_.chunk_bytes, s.data.size() - off);
    if (len == 0 || Crc32(s.data.data() + off, len) != expect) {
      ++stats_.crc_failures;
      return false;
    }
    off += len;
  }
  if (off != s.data.size()) {
    ++stats_.torn_detected;
    return false;
  }
  return true;
}

bool CheckpointStore::Restore(memsim::Machine& machine,
                              std::vector<uint8_t>* payload) {
  PMG_CHECK_MSG(!machine.in_epoch(),
                "checkpoint restores run in their own epoch");
  // Newest slot by seq first; a torn slot carries its seq, so a torn
  // newest is examined — and rejected — before the older committed one.
  int order[2] = {0, 1};
  if (slots_[1].seq > slots_[0].seq) {
    order[0] = 1;
    order[1] = 0;
  }
  machine.BeginEpoch(1);
  bool found = false;
  bool newest_candidate = true;
  for (int k = 0; k < 2 && !found; ++k) {
    Slot& s = slots_[order[k]];
    if (s.seq == 0) continue;
    // Header probe plus a sequential payload scan, both priced.
    machine.StorageRead(0, 64, opt_.node, /*sequential=*/true);
    stats_.bytes_read += 64;
    if (!s.data.empty()) {
      machine.StorageRead(0, s.data.size(), opt_.node, /*sequential=*/true);
      stats_.bytes_read += s.data.size();
    }
    if (Validate(s)) {
      payload->assign(s.data.begin(),
                      s.data.begin() + static_cast<int64_t>(s.payload_bytes));
      ++stats_.restores;
      if (!newest_candidate) ++stats_.fallbacks;
      found = true;
    }
    newest_candidate = false;
  }
  machine.EndEpoch();
  return found;
}

void CheckpointStore::CorruptNewest() {
  Slot* target = nullptr;
  for (Slot& s : slots_) {
    if (s.committed && !s.data.empty() &&
        (target == nullptr || s.seq > target->seq)) {
      target = &s;
    }
  }
  PMG_CHECK_MSG(target != nullptr, "no committed checkpoint to corrupt");
  target->data[target->data.size() / 2] ^= 0x01;
}

}  // namespace pmg::faultsim
