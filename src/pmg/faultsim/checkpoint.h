#ifndef PMG_FAULTSIM_CHECKPOINT_H_
#define PMG_FAULTSIM_CHECKPOINT_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "pmg/common/types.h"
#include "pmg/memsim/machine.h"

/// \file checkpoint.h
/// An epoch-granular checkpoint store over the app-direct storage model.
///
/// Layout is the classic persistent-memory A/B (dual-slot) scheme: writes
/// alternate between two slots, so the newest *committed* checkpoint is
/// never overwritten by an in-progress one. A slot is a sequence number,
/// the payload split into fixed-size chunks each protected by a CRC32, and
/// a commit record written last (one cache-line store, the PM publication
/// idiom). A crash mid-write leaves the slot without its commit record —
/// torn — and recovery falls back to the other slot.
///
/// Every byte written or read is priced through Machine::StorageWrite /
/// StorageRead, i.e. with the paper's app-direct bandwidth rows; the
/// host-side slot buffers are mutated *before* each priced call, so a
/// SimulatedCrash thrown from the storage path leaves exactly the torn
/// state a real power cut would.

namespace pmg::faultsim {

/// CRC-32 (IEEE 802.3, reflected). `crc` chains partial computations;
/// Crc32("123456789") == 0xCBF43926.
uint32_t Crc32(const void* data, uint64_t n, uint32_t crc = 0);

struct CheckpointStats {
  uint64_t writes_started = 0;
  uint64_t writes_committed = 0;
  uint64_t restores = 0;
  /// Slots rejected during restore: missing commit record / CRC mismatch.
  uint64_t torn_detected = 0;
  uint64_t crc_failures = 0;
  /// Restores that had to fall back past the newest slot.
  uint64_t fallbacks = 0;
  uint64_t bytes_written = 0;
  uint64_t bytes_read = 0;
};

/// Little-endian-of-host byte serializer for checkpoint payloads.
class PayloadWriter {
 public:
  void U32(uint32_t v) { Bytes(&v, sizeof(v)); }
  void U64(uint64_t v) { Bytes(&v, sizeof(v)); }
  void F64(double v) { Bytes(&v, sizeof(v)); }
  void Bytes(const void* p, uint64_t n) {
    const auto* b = static_cast<const uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  const std::vector<uint8_t>& data() const { return buf_; }

 private:
  std::vector<uint8_t> buf_;
};

/// Bounds-checked reader; `ok()` goes false on over-read instead of UB,
/// so a corrupted payload that slipped past the CRCs still fails loudly.
class PayloadReader {
 public:
  explicit PayloadReader(const std::vector<uint8_t>& buf)
      : p_(buf.data()), end_(buf.data() + buf.size()) {}
  uint32_t U32() {
    uint32_t v = 0;
    Bytes(&v, sizeof(v));
    return v;
  }
  uint64_t U64() {
    uint64_t v = 0;
    Bytes(&v, sizeof(v));
    return v;
  }
  double F64() {
    double v = 0;
    Bytes(&v, sizeof(v));
    return v;
  }
  bool Bytes(void* out, uint64_t n) {
    if (static_cast<uint64_t>(end_ - p_) < n) {
      ok_ = false;
      return false;
    }
    std::memcpy(out, p_, n);
    p_ += n;
    return true;
  }
  bool ok() const { return ok_; }

 private:
  const uint8_t* p_;
  const uint8_t* end_;
  bool ok_ = true;
};

class CheckpointStore {
 public:
  struct Options {
    /// Chunk size of the payload split (one CRC per chunk).
    uint32_t chunk_bytes = 4096;
    /// Home node of the app-direct namespace.
    NodeId node = 0;
  };

  CheckpointStore() = default;
  explicit CheckpointStore(const Options& opt) : opt_(opt) {}

  /// Writes `bytes` of `payload` as the next checkpoint, pricing the I/O
  /// on `machine` in one epoch with `threads` writers. May propagate
  /// SimulatedCrash from the machine's fault hook — in that case the
  /// target slot is torn (host state mutated, commit record absent).
  void Write(memsim::Machine& machine, uint32_t threads, const void* payload,
             uint64_t bytes);

  /// Validates the newest slot (commit record + meta CRC + chunk CRCs),
  /// falling back to the other slot if torn or corrupt. Returns false when
  /// no valid checkpoint exists. Reads are priced on `machine`.
  bool Restore(memsim::Machine& machine, std::vector<uint8_t>* payload);

  bool HasCommitted() const {
    return slots_[0].committed || slots_[1].committed;
  }
  const CheckpointStats& stats() const { return stats_; }

  /// Test hook: flips one payload byte of the newest committed slot
  /// without touching its CRCs, simulating silent media corruption.
  void CorruptNewest();

 private:
  struct Slot {
    uint64_t seq = 0;  // 0 = never written
    bool committed = false;
    uint64_t payload_bytes = 0;
    std::vector<uint8_t> data;
    std::vector<uint32_t> chunk_crcs;
    uint32_t meta_crc = 0;
  };

  /// CRC over the slot header (seq, payload size, chunk CRCs).
  static uint32_t MetaCrc(const Slot& s);
  /// True when the slot holds a complete, uncorrupted checkpoint.
  bool Validate(const Slot& s);

  Slot slots_[2];
  uint64_t next_seq_ = 1;
  Options opt_;
  CheckpointStats stats_;
};

}  // namespace pmg::faultsim

#endif  // PMG_FAULTSIM_CHECKPOINT_H_
