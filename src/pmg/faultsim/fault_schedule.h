#ifndef PMG_FAULTSIM_FAULT_SCHEDULE_H_
#define PMG_FAULTSIM_FAULT_SCHEDULE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "pmg/common/types.h"

/// \file fault_schedule.h
/// Declarative, fully deterministic fault schedules. A schedule is a list
/// of armed events over *media-op ordinals* (the count of costed media
/// accesses plus storage I/Os since the injector was created), virtual
/// addresses, or epoch indices — never wall-clock or host randomness, so
/// every injected run is bit-reproducible.
///
/// Text grammar (the `pmg_run --faults=` spec): events separated by `;`,
/// each `kind@trigger:value[,key=val...]`:
///
///   ue@access:N          uncorrectable media error at media op N
///   ue@addr:0xHEX        UE on first touch of the line holding 0xHEX
///   lat@access:N,ns=T,count=M,retries=R
///                        transient media faults on ops [N, N+M): each op
///                        retries 1..R times (seeded) with exponential
///                        backoff of base T ns
///   link@epoch:E,x=F,epochs=K
///                        remote-link bandwidth scaled by F for epochs
///                        [E, E+K)
///   crash@epoch:E        process crash at the end of epoch E
///   crash@access:N       process crash at media op N
///   seed=S               seed of the deterministic retry draw
///
/// Example: "ue@access:5000;lat@access:9000,ns=2000,count=16;crash@epoch:3"

namespace pmg::faultsim {

enum class FaultKind { kUe, kLatency, kLink, kCrash };
enum class TriggerKind { kAccess, kAddr, kEpoch };

const char* FaultKindName(FaultKind k);

/// One armed event. Fields beyond `kind`/`trigger`/`at` apply only to the
/// kinds that read them.
struct FaultEvent {
  FaultKind kind = FaultKind::kUe;
  TriggerKind trigger = TriggerKind::kAccess;
  /// Media-op ordinal, virtual address, or epoch index, per `trigger`.
  uint64_t at = 0;
  /// kLatency: backoff base per retry.
  SimNs stall_ns = 1000;
  /// kLatency: number of consecutive media ops affected.
  uint32_t count = 1;
  /// kLatency: retry bound (each affected op retries 1..max_retries times).
  uint32_t max_retries = 3;
  /// kLink: remote-bandwidth multiplier in (0, 1].
  double factor = 0.5;
  /// kLink: duration in epochs.
  uint32_t epochs = 1;
};

struct FaultSchedule {
  std::vector<FaultEvent> events;
  /// Seeds the deterministic pseudo-random retry-count draw.
  uint64_t seed = 1;

  bool empty() const { return events.empty(); }
  bool HasCrash() const;

  /// Parses the text grammar above. On failure returns false and sets
  /// `*error` to a one-line description (for the CLI's exit-2 path).
  static bool Parse(std::string_view spec, FaultSchedule* out,
                    std::string* error);
};

}  // namespace pmg::faultsim

#endif  // PMG_FAULTSIM_FAULT_SCHEDULE_H_
