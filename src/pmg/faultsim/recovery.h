#ifndef PMG_FAULTSIM_RECOVERY_H_
#define PMG_FAULTSIM_RECOVERY_H_

#include <cstdint>
#include <vector>

#include "pmg/analytics/common.h"
#include "pmg/faultsim/checkpoint.h"
#include "pmg/faultsim/fault_injector.h"
#include "pmg/faultsim/fault_schedule.h"
#include "pmg/graph/topology.h"
#include "pmg/memsim/machine.h"
#include "pmg/memsim/stats.h"

/// \file recovery.h
/// Crash-recovery drivers: run an algorithm under a fault schedule with
/// epoch-granular checkpointing, restarting after every simulated crash
/// from the newest valid checkpoint (or from scratch when none exists).
///
/// The contract these drivers prove — and the faultsim tests enforce — is
/// *bit-identical equivalence*: for any crash point, the final result of
/// the interrupted-and-recovered run equals the uninterrupted run's,
/// because checkpoints capture the complete round state (labels +
/// frontier + round counter) of deterministic bulk-synchronous loops.
///
/// The injector and checkpoint store persist across restarts (they model
/// the PM namespace, which survives process death); each attempt builds a
/// fresh Machine (DRAM contents and caches do not survive).

namespace pmg::metrics {
class MetricsSession;
}  // namespace pmg::metrics

namespace pmg::trace {
class TraceSession;
}  // namespace pmg::trace

namespace pmg::whatif {
class JournalRecorder;
}  // namespace pmg::whatif

namespace pmg::faultsim {

struct RecoveryConfig {
  memsim::MachineConfig machine;
  uint32_t threads = 8;
  FaultSchedule faults;
  /// Checkpoint every N algorithm rounds; 0 disables checkpointing
  /// (crashes then restart from scratch).
  uint32_t checkpoint_every = 0;
  /// Give up after this many restarts (completed = false in the result).
  uint32_t max_restarts = 8;
  analytics::AlgoOptions algo;
  /// Trace session re-attached to each attempt's fresh machine; its
  /// simulated timeline runs monotonically across the attempts, with
  /// instant events marking checkpoint writes, restores, and crashes.
  trace::TraceSession* trace = nullptr;
  /// Metrics session, re-attached the same way; counters, heat, and
  /// profiler samples accumulate across the attempts on one timeline.
  metrics::MetricsSession* metrics = nullptr;
  /// Cost-journal recorder, re-attached to each attempt's fresh machine
  /// (after any trace session — it splices in front and forwards). Epochs
  /// from every attempt append onto one journal, so the recorded total
  /// matches RecoveryResult::total_ns.
  whatif::JournalRecorder* journal = nullptr;
};

/// Media-op ordinal window of one checkpoint write, recorded so tests can
/// aim a `crash@access:N` inside a write and exercise torn-slot fallback.
struct OpRange {
  uint64_t begin_op = 0;
  uint64_t end_op = 0;
};

struct RecoveryResult {
  bool completed = false;
  /// Total runs started; 1 means no crash occurred.
  uint32_t attempts = 0;
  uint64_t crashes = 0;
  uint32_t restarts_from_checkpoint = 0;
  uint32_t restarts_from_scratch = 0;
  uint64_t rounds = 0;
  /// Simulated time summed over all attempts (the cost a deployment pays).
  SimNs total_ns = 0;
  SimNs checkpoint_write_ns = 0;
  SimNs restore_ns = 0;
  FaultReport fault;
  CheckpointStats ckpt;
  std::vector<OpRange> ckpt_op_ranges;
  /// Machine stats of the final (completing) attempt.
  memsim::MachineStats stats;
  /// Final labels: levels for bfs, ranks for pagerank, component labels
  /// for cc, distances for sssp.
  std::vector<uint32_t> bfs_levels;
  std::vector<double> pr_ranks;
  std::vector<uint64_t> cc_labels;
  std::vector<uint64_t> sssp_dists;
};

/// Dense-worklist BFS (the BfsDenseWl loop) under faults + checkpointing.
RecoveryResult RunBfsWithRecovery(const graph::CsrTopology& topo,
                                  VertexId source, const RecoveryConfig& cfg);

/// Pull PageRank (the PrPull loop) under faults + checkpointing.
RecoveryResult RunPrWithRecovery(const graph::CsrTopology& topo,
                                 const RecoveryConfig& cfg);

/// Double-buffered label propagation (the CcLabelProp loop) under faults +
/// checkpointing. The `next` buffer is recomputed from the labels at the
/// top of each round, so (round, labels, frontier) is the complete state.
RecoveryResult RunCcWithRecovery(const graph::CsrTopology& topo,
                                 const RecoveryConfig& cfg);

/// Dense-worklist SSSP (the SsspDenseWl loop) under faults + checkpointing.
RecoveryResult RunSsspWithRecovery(const graph::CsrTopology& topo,
                                   VertexId source,
                                   const RecoveryConfig& cfg);

}  // namespace pmg::faultsim

#endif  // PMG_FAULTSIM_RECOVERY_H_
