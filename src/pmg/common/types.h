#ifndef PMG_COMMON_TYPES_H_
#define PMG_COMMON_TYPES_H_

#include <cstdint>

/// \file types.h
/// Shared vocabulary types for the PMG simulator and runtime.

namespace pmg {

/// Simulated time in nanoseconds. All simulator clocks use this unit.
using SimNs = uint64_t;

/// Identifier of a (virtual) hardware thread. Virtual threads model the
/// paper's 96-thread machine regardless of how many host cores exist.
using ThreadId = uint32_t;

/// Identifier of a NUMA node (socket).
using NodeId = uint32_t;

/// Simulated virtual address.
using VirtAddr = uint64_t;

/// Simulated physical page number (globally unique across nodes).
using PhysPage = uint64_t;

/// Graph vertex and edge identifiers. 64-bit: one of the paper's findings
/// is that 32-bit node IDs (GAP/GraphIt/GridGraph) cannot represent wdc12.
using VertexId = uint64_t;
using EdgeId = uint64_t;

/// Direction of a memory access.
enum class AccessType { kRead, kWrite };

inline constexpr SimNs kNsPerUs = 1000;
inline constexpr SimNs kNsPerMs = 1000 * 1000;
inline constexpr SimNs kNsPerSec = 1000ull * 1000 * 1000;

/// Byte-size helpers (user-defined literals are avoided per style guide).
inline constexpr uint64_t KiB(uint64_t v) { return v * 1024ull; }
inline constexpr uint64_t MiB(uint64_t v) { return v * 1024ull * 1024ull; }
inline constexpr uint64_t GiB(uint64_t v) {
  return v * 1024ull * 1024ull * 1024ull;
}

}  // namespace pmg

#endif  // PMG_COMMON_TYPES_H_
