#ifndef PMG_COMMON_TYPES_H_
#define PMG_COMMON_TYPES_H_

#include <cstdint>

/// \file types.h
/// Shared vocabulary types for the PMG simulator and runtime.

namespace pmg {

/// Simulated time in nanoseconds. All simulator clocks use this unit.
using SimNs = uint64_t;

/// Identifier of a (virtual) hardware thread. Virtual threads model the
/// paper's 96-thread machine regardless of how many host cores exist.
using ThreadId = uint32_t;

/// Identifier of a NUMA node (socket).
using NodeId = uint32_t;

/// Simulated virtual address.
using VirtAddr = uint64_t;

/// Simulated physical page number (globally unique across nodes).
using PhysPage = uint64_t;

/// Graph vertex and edge identifiers. 64-bit: one of the paper's findings
/// is that 32-bit node IDs (GAP/GraphIt/GridGraph) cannot represent wdc12.
using VertexId = uint64_t;
using EdgeId = uint64_t;

/// Direction of a memory access, plus atomicity. The plain variants are
/// ordinary loads/stores; the atomic variants are the honest annotation of
/// accesses that a real parallel implementation performs with hardware
/// atomics (atomic loads/stores, CAS, fetch-add). Atomicity does not change
/// how an access is priced — an atomic costs what its direction costs — but
/// the sancheck race detector treats atomics as synchronization: a pair of
/// conflicting accesses is only a data race when neither side is atomic.
enum class AccessType : uint8_t {
  kRead,
  kWrite,
  kAtomicRead,
  kAtomicWrite,
  /// One access that both reads and writes its location (lock xadd,
  /// compare-and-swap). Counts as a read and a write in the access mix and
  /// is priced as a write (the line is dirtied).
  kAtomicRMW,
};

constexpr bool IsRead(AccessType t) {
  return t == AccessType::kRead || t == AccessType::kAtomicRead ||
         t == AccessType::kAtomicRMW;
}
constexpr bool IsWrite(AccessType t) {
  return t == AccessType::kWrite || t == AccessType::kAtomicWrite ||
         t == AccessType::kAtomicRMW;
}
constexpr bool IsAtomic(AccessType t) {
  return t == AccessType::kAtomicRead || t == AccessType::kAtomicWrite ||
         t == AccessType::kAtomicRMW;
}

constexpr const char* AccessTypeName(AccessType t) {
  switch (t) {
    case AccessType::kRead:
      return "read";
    case AccessType::kWrite:
      return "write";
    case AccessType::kAtomicRead:
      return "atomic-read";
    case AccessType::kAtomicWrite:
      return "atomic-write";
    case AccessType::kAtomicRMW:
      return "atomic-rmw";
  }
  return "?";
}

inline constexpr SimNs kNsPerUs = 1000;
inline constexpr SimNs kNsPerMs = 1000 * 1000;
inline constexpr SimNs kNsPerSec = 1000ull * 1000 * 1000;

/// Byte-size helpers (user-defined literals are avoided per style guide).
inline constexpr uint64_t KiB(uint64_t v) { return v * 1024ull; }
inline constexpr uint64_t MiB(uint64_t v) { return v * 1024ull * 1024ull; }
inline constexpr uint64_t GiB(uint64_t v) {
  return v * 1024ull * 1024ull * 1024ull;
}

}  // namespace pmg

#endif  // PMG_COMMON_TYPES_H_
