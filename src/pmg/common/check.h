#ifndef PMG_COMMON_CHECK_H_
#define PMG_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// \file check.h
/// Invariant-checking macros. The library does not use C++ exceptions:
/// unrecoverable programming errors abort with a diagnostic, while
/// recoverable conditions are reported through return values.

/// Aborts with a message naming the failed condition and its location.
/// Enabled in all build types: the checks guard simulator invariants whose
/// violation would silently corrupt measured results.
#define PMG_CHECK(cond)                                                    \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "PMG_CHECK failed: %s at %s:%d\n", #cond,       \
                   __FILE__, __LINE__);                                    \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

/// Like PMG_CHECK but prints a printf-style explanation.
#define PMG_CHECK_MSG(cond, ...)                                           \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "PMG_CHECK failed: %s at %s:%d: ", #cond,       \
                   __FILE__, __LINE__);                                    \
      std::fprintf(stderr, __VA_ARGS__);                                   \
      std::fprintf(stderr, "\n");                                          \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#endif  // PMG_COMMON_CHECK_H_
